"""The discrete-event simulator kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Higher
layers (the process runner in :mod:`repro.core.runner`, the timer service
in :mod:`repro.timers.service`) schedule callbacks; the kernel advances
time to each event in order and fires it.

The kernel deliberately knows nothing about processes, registers or
timers -- it is a plain DES core, which keeps it easy to test in
isolation and reusable by every substrate.

Scheduling comes in three flavours:

* :meth:`Simulator.schedule_at` / :meth:`Simulator.schedule_after` are
  the dominant schedule-and-fire path and allocate nothing but the
  queue's entry tuple (the queue insert is fused into these methods --
  no intermediate call layer on the hot path);
* the ``*_cancellable`` variants additionally allocate and return an
  :class:`~repro.sim.events.EventHandle` for callers that may need to
  disarm the event later (register-emulation retries and other
  low-volume users);
* :meth:`Simulator.schedule_lane_after` schedules through a columnar
  :class:`~repro.sim.events.EventLane` and returns an *integer* token --
  the allocation-free cancellable path used by the two dominant
  high-volume kinds, timer events and netsim message deliveries.

**Batch dispatch.**  The run loop drains all events sharing the current
virtual timestamp as one *batch*: the heap yields the first event at
that instant and the queue's collision bucket supplies the rest, in
exact ``(time, seq)`` order, without touching the heap again.  The loop
body is locals-only; ``events_fired`` / ``events_skipped`` are synced to
the instance at **batch boundaries** (and whenever the loop returns), so
a callback that reads ``sim.events_fired`` mid-batch observes the value
as of the start of its batch -- the *batch-visible contract*.  The
per-event guarantee is preserved where it is contractual: ``stop_when``
predicates observe exact live counters (both are synced immediately
before every predicate call), and ``max_events`` / ``stop()`` are
honoured mid-batch, with the undrained remainder of the batch restored
to the queue in exact order.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.events import (
    _EMPTY,
    _KIND_IDS,
    _KIND_NAMES,
    EventHandle,
    EventLane,
    EventQueue,
    intern_kind,
)


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    trace_events:
        When true, keep a count per event kind (cheap observability used
        by tests and benches).  Counts accumulate in a list indexed by
        interned kind id; the name-keyed :attr:`fired_by_kind` dict is
        materialized lazily on read, so the traced hot loop never hashes
        kind strings.

    Notes
    -----
    Time is a ``float`` number of abstract *time units*.  Nothing in the
    library interprets a unit as a second; the paper's model is untimed
    except for the AWB bounds, which are expressed in the same units.
    """

    def __init__(self, trace_events: bool = True) -> None:
        self._queue = EventQueue()
        # Direct references to the queue's storage for the fused
        # schedule/run paths (all identities are stable; see
        # EventQueue.clear).
        self._heap = self._queue._heap
        self._buckets = self._queue._buckets
        self._pool = self._queue._pool
        self._next_seq = self._queue._next_seq
        # Mirror of the queue's heap-direct pin (see EventQueue): the
        # fused schedulers read the mirror to avoid a chained attribute
        # lookup per push; the run loop writes both.
        self._direct_time = float("nan")
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.events_skipped = 0
        self._trace_events = trace_events
        # Per-kind fire counts, indexed by interned kind id (satellite
        # fix: the old dict.get per traced event is gone).
        self._fired_counts: list = []

    @property
    def trace_events(self) -> bool:
        """Whether per-kind event accounting is enabled."""
        return self._trace_events

    @property
    def fired_by_kind(self) -> dict:
        """Fired-event counts keyed by kind name (traced mode only).

        Materialized on read from the id-indexed count column; mutating
        the returned dict does not affect the simulator's accounting.
        """
        counts = self._fired_counts
        names = _KIND_NAMES
        return {names[kid]: n for kid, n in enumerate(counts) if n}

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` at absolute virtual time ``time``.

        ``time`` may equal ``now`` (fires after currently-firing event)
        but may not precede it.  The fast path: no handle is created;
        use :meth:`schedule_at_cancellable` when the event may need to
        be disarmed.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        # Fused hybrid-queue insert (see EventQueue._insert; duplicated
        # in the three hot schedulers so the path stays call-free).
        entry = (time, self._next_seq(), kid, pid, callback, None)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            if time != self._direct_time:
                buckets[time] = _EMPTY
            heappush(self._heap, entry)
        elif bucket is _EMPTY:
            if time != self._direct_time:
                buckets[time] = [entry]
            else:
                heappush(self._heap, entry)
        else:
            bucket.append(entry)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` after a non-negative ``delay`` (no handle)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        entry = (time, self._next_seq(), kid, pid, callback, None)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            if time != self._direct_time:
                buckets[time] = _EMPTY
            heappush(self._heap, entry)
        elif bucket is _EMPTY:
            if time != self._direct_time:
                buckets[time] = [entry]
            else:
                heappush(self._heap, entry)
        else:
            bucket.append(entry)

    def schedule_at_cancellable(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellation handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push_cancellable(time, kind, callback, pid=pid)

    def schedule_after_cancellable(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Like :meth:`schedule_after`, but returns a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at_cancellable(self._now + delay, callback, kind=kind, pid=pid)

    def schedule_lane_after(
        self,
        lane: EventLane,
        delay: float,
        payload: Any,
        pid: Optional[int] = None,
    ) -> int:
        """Schedule ``payload`` through ``lane`` after ``delay``.

        Returns the lane token -- an integer that cancels or probes the
        event via ``lane.cancel(token)`` / ``lane.live(token)``.  This
        is the columnar fast path for high-volume cancellable kinds: no
        handle object, no per-event closure; the payload lives in the
        lane's preallocated columns until the event fires.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        token = lane.acquire(payload)
        entry = (time, self._next_seq(), lane.kind_id, pid, lane, token)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            if time != self._direct_time:
                buckets[time] = _EMPTY
            heappush(self._heap, entry)
        elif bucket is _EMPTY:
            if time != self._direct_time:
                buckets[time] = [entry]
            else:
                heappush(self._heap, entry)
        else:
            bucket.append(entry)
        return token

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Fire events in order until a stop condition holds.

        Parameters
        ----------
        until:
            Inclusive virtual-time horizon.  Events scheduled strictly
            after it stay queued; the clock is advanced to ``until``.
        max_events:
            Safety valve on the number of events fired *by this
            invocation* (not the simulator-lifetime ``events_fired``
            counter, so repeated ``run()`` calls each get a fresh
            budget).  Honoured mid-batch.
        stop_when:
            Optional predicate evaluated after every fired event; it
            observes exact live ``events_fired`` / ``events_skipped``
            values (both are synced immediately before each call).

        Returns
        -------
        float
            The virtual time when the loop returned.

        Notes
        -----
        Events sharing a timestamp are dispatched as one batch (see the
        module docstring).  ``events_fired`` / ``events_skipped`` are
        synced to the instance at batch boundaries, so *callbacks* that
        read them mid-batch observe the values as of the start of their
        batch; ``stop_when`` always sees exact values.  When the loop
        stops mid-batch, the rest of the batch is restored to the queue
        in exact ``(time, seq)`` order.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        # Hoisted out of the loop: the batch drain touches only locals.
        # ``heap`` / ``buckets`` alias the queue's storage, so callbacks
        # that schedule new events grow them in place.
        queue = self._queue
        heap = self._heap
        buckets = self._buckets
        bpop = buckets.pop
        pool = self._pool
        pop = heappop
        push = heappush
        counts = self._fired_counts if self._trace_events else None
        start = fired = self.events_fired
        skipped = self.events_skipped
        stop = False
        try:
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    self._now = until
                    break
                entry = pop(heap)
                self._now = time
                # The batch: the heap entry plus the instant's collision
                # bucket (exact seq order; _EMPTY means no collisions --
                # the dominant singleton case takes the loop-free path).
                bucket = bpop(time, _EMPTY)
                if bucket is _EMPTY:
                    callback = entry[4]
                    handle = entry[5]
                    if handle is None:
                        if callback is None:
                            skipped += 1
                            continue
                        callback()
                    elif type(handle) is int:
                        # Lane entry: callback slot holds the lane.
                        if not callback.fire(handle):
                            skipped += 1
                            continue
                    elif handle.cancelled or callback is None:
                        skipped += 1
                        continue
                    else:
                        callback()
                    fired += 1
                    if counts is not None:
                        kid = entry[2]
                        try:
                            counts[kid] += 1
                        except IndexError:
                            counts.extend([0] * (kid + 1 - len(counts)))
                            counts[kid] = 1
                    if self._stopped:
                        stop = True
                    elif max_events is not None and fired - start >= max_events:
                        stop = True
                    elif stop_when is not None:
                        self.events_fired = fired
                        self.events_skipped = skipped
                        if stop_when():
                            stop = True
                    if stop:
                        # A same-instant straggler scheduled by this
                        # event sits in the heap with a fresh marker (or
                        # upgraded bucket); restore it heap-individual
                        # and pin the instant so post-stop schedules at
                        # it stay in exact seq order.
                        extra = bpop(time, _EMPTY)
                        if extra is not _EMPTY:
                            for straggler in extra:
                                push(heap, straggler)
                            queue._direct_time = self._direct_time = time
                        break
                    # Batch boundary: sync the public counters.
                    self.events_fired = fired
                    self.events_skipped = skipped
                    continue
                size = len(bucket)
                index = 0
                while True:
                    callback = entry[4]
                    handle = entry[5]
                    if handle is None:
                        if callback is None:
                            skipped += 1
                            live = False
                        else:
                            callback()
                            fired += 1
                            live = True
                    elif type(handle) is int:
                        # Lane entry: callback slot holds the lane.
                        if callback.fire(handle):
                            fired += 1
                            live = True
                        else:
                            skipped += 1
                            live = False
                    elif handle.cancelled or callback is None:
                        skipped += 1
                        live = False
                    else:
                        callback()
                        fired += 1
                        live = True
                    if live:
                        if counts is not None:
                            kid = entry[2]
                            try:
                                counts[kid] += 1
                            except IndexError:
                                counts.extend([0] * (kid + 1 - len(counts)))
                                counts[kid] = 1
                        if self._stopped:
                            stop = True
                        elif max_events is not None and fired - start >= max_events:
                            stop = True
                        elif stop_when is not None:
                            self.events_fired = fired
                            self.events_skipped = skipped
                            if stop_when():
                                stop = True
                        if stop:
                            # Mid-batch stop: restore the undrained
                            # remainder (and any same-instant stragglers
                            # scheduled during the batch) to the heap
                            # individually -- their seqs keep the order
                            # exact -- and pin the instant heap-direct
                            # so later same-time schedules stay exact.
                            extra = bpop(time, _EMPTY)
                            if index < size or extra is not _EMPTY:
                                for j in range(index, size):
                                    push(heap, bucket[j])
                                for straggler in extra:
                                    push(heap, straggler)
                                queue._direct_time = self._direct_time = time
                            break
                    if index >= size:
                        break
                    entry = bucket[index]
                    index += 1
                bucket.clear()
                if len(pool) < EventQueue._POOL_DEPTH:
                    pool.append(bucket)
                if stop:
                    break
                # Batch boundary: sync the public counters.
                self.events_fired = fired
                self.events_skipped = skipped
            else:
                # Queue drained; advance the clock to the horizon if given.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self.events_fired = fired
            self.events_skipped = skipped
        return self._now

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)


__all__ = ["SimulationError", "Simulator"]


# --- kernel-variant rebind (stripped from the compiled build) ---------
# The events module (imported above) has already decided the variant;
# when the compiled extension is active, its Simulator shares the
# extension's queue/lane/interning internals, so rebind wholesale.
from repro.sim import variant as _variant

if _variant.kernel_variant()[0] == "compiled":
    from repro.sim import _ckernel as _ckernel

    SimulationError = _ckernel.SimulationError  # type: ignore[misc]
    Simulator = _ckernel.Simulator  # type: ignore[misc]
