"""The time-ordered event queue: plain tuple heap entries.

The queue is the heart of the simulator, and every experiment bottoms
out in its push/pop cycle, so entries are bare tuples rather than
objects::

    (time, seq, kind_id, pid, callback, handle)

ordered by ``(time, seq)``.  The monotonically increasing sequence
number makes ordering *stable* -- two events scheduled for the same
instant fire in the order they were scheduled, which keeps runs
deterministic and makes the linearization order of same-time register
operations well defined -- and, because it is unique, tuple comparison
never reaches the non-comparable ``callback`` element.

``kind_id`` is an interned integer id for the event-kind label
(``"step"``, ``"timer"``, ...): interning happens once per distinct
string, so the hot path never hashes label strings into per-event
records.  ``handle`` is ``None`` on the dominant schedule-and-fire path;
only :meth:`EventQueue.push_cancellable` allocates an
:class:`EventHandle` (the O(1) lazy-cancel trick: the entry stays in the
heap and the run loop skips it when popped).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Callable, Optional, Tuple

# Tuple-entry layout indices (documented for consumers of pop()).
TIME = 0
SEQ = 1
KIND = 2
PID = 3
CALLBACK = 4
HANDLE = 5

#: One scheduled event: ``(time, seq, kind_id, pid, callback, handle)``.
EventEntry = Tuple[float, int, int, Optional[int], Optional[Callable[[], None]], Optional["EventHandle"]]

# ----------------------------------------------------------------------
# Kind interning
# ----------------------------------------------------------------------
_KIND_IDS: dict = {}
_KIND_NAMES: list = []


def intern_kind(kind: str) -> int:
    """Return the stable integer id of an event-kind label.

    Ids are process-global and assigned in first-seen order; they are an
    in-memory optimization only and must never be persisted.
    """
    kid = _KIND_IDS.get(kind)
    if kid is None:
        kid = len(_KIND_NAMES)
        _KIND_IDS[kind] = kid
        _KIND_NAMES.append(kind)
    return kid


def kind_name(kind_id: int) -> str:
    """The label interned as ``kind_id`` (IndexError if never interned)."""
    return _KIND_NAMES[kind_id]


class EventHandle:
    """Cancellable reference to a scheduled event (opt-in).

    Cancellation is lazy: the entry stays in the heap but the run loop
    skips its callback when popped.  Handles exist only for events
    scheduled through the ``*_cancellable`` paths; the dominant
    schedule-and-fire path carries ``None`` in the handle slot and
    allocates nothing beyond the heap tuple.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips its callback."""
        self.cancelled = True


class EventQueue:
    """A stable min-heap of plain tuple event entries.

    >>> q = EventQueue()
    >>> q.push(2.0, "b", None)
    >>> q.push(1.0, "a", None)
    >>> kind_name(q.pop()[KIND])
    'a'
    """

    __slots__ = ("_heap", "_next_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._next_seq = itertools.count().__next__

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        kind: str,
        callback: Optional[Callable[[], None]],
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` at virtual time ``time`` (no handle).

        The fast path: allocates only the heap tuple.  Scheduling at a
        NaN time is a programming error and raises.
        """
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        heappush(self._heap, (time, self._next_seq(), kid, pid, callback, None))

    def push_cancellable(
        self,
        time: float,
        kind: str,
        callback: Optional[Callable[[], None]],
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` and return a cancellation handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        handle = EventHandle()
        heappush(self._heap, (time, self._next_seq(), kid, pid, callback, handle))
        return handle

    def peek_time(self) -> Optional[float]:
        """Time of the next (possibly cancelled) event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventEntry:
        """Remove and return the next entry tuple."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heappop(self._heap)

    def clear(self) -> None:
        """Drop all pending events (in place; the heap list identity is
        stable so callers may hold a direct reference to it)."""
        self._heap.clear()


__all__ = [
    "CALLBACK",
    "EventEntry",
    "EventHandle",
    "EventQueue",
    "HANDLE",
    "KIND",
    "PID",
    "SEQ",
    "TIME",
    "intern_kind",
    "kind_name",
]
