"""Event records and the time-ordered event queue.

The queue is the heart of the simulator: a binary heap of
:class:`Event` records ordered by ``(time, seq)``.  The monotonically
increasing sequence number makes ordering *stable*: two events scheduled
for the same instant fire in the order they were scheduled, which keeps
runs deterministic and makes the linearization order of same-time
register operations well defined.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulator event.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    seq:
        Scheduling sequence number; ties on ``time`` are broken by ``seq``
        so that the queue is a stable priority queue.
    kind:
        A short label used for tracing and debugging (``"step"``,
        ``"timer"``, ``"sample"``, ...).
    callback:
        Zero-argument callable invoked when the event fires.  ``None``
        for cancelled events.
    pid:
        Process the event belongs to, or ``None`` for global events.
    """

    time: float
    seq: int
    kind: str
    callback: Optional[Callable[[], None]]
    pid: Optional[int] = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


@dataclass(slots=True)
class EventHandle:
    """Cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but its callback is
    skipped when popped.  This is the standard O(1)-cancel trick and keeps
    the heap invariant untouched.
    """

    event: Event
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips its callback."""
        self.cancelled = True


class EventQueue:
    """A stable min-heap of :class:`Event` records.

    >>> q = EventQueue()
    >>> _ = q.push(2.0, "b", None)
    >>> _ = q.push(1.0, "a", None)
    >>> q.pop()[0].kind
    'a'
    """

    def __init__(self) -> None:
        self._heap: list[tuple[Event, EventHandle]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        kind: str,
        callback: Optional[Callable[[], None]],
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at virtual time ``time``.

        Returns an :class:`EventHandle` that can cancel the event.
        Scheduling in the past is a programming error and raises.
        """
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = Event(time=time, seq=next(self._seq), kind=kind, callback=callback, pid=pid)
        handle = EventHandle(event)
        heapq.heappush(self._heap, (event, handle))
        return handle

    def peek_time(self) -> Optional[float]:
        """Time of the next (possibly cancelled) event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0].time

    def pop(self) -> tuple[Event, EventHandle]:
        """Remove and return the next event with its handle."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()


__all__ = ["Event", "EventHandle", "EventQueue"]
