"""The time-ordered event queue: a collision-bucketed tuple heap.

The queue is the heart of the simulator, and every experiment bottoms
out in its push/pop cycle, so entries are bare tuples rather than
objects::

    (time, seq, kind_id, pid, callback, handle)

ordered by ``(time, seq)``.  The monotonically increasing sequence
number makes ordering *stable* -- two events scheduled for the same
instant fire in the order they were scheduled, which keeps runs
deterministic and makes the linearization order of same-time register
operations well defined -- and, because it is unique, tuple comparison
never reaches the non-comparable ``callback`` element.

Storage is *hybrid*: the binary heap holds at most one entry per
distinct timestamp, and every further event scheduled for an
already-pending timestamp lands in that timestamp's FIFO **collision
bucket** (a plain list in ``_buckets``).  Equal-timestamp events are the
common case in batch-shaped workloads -- broadcast deliveries over
fixed-delay links, aligned timer populations -- and the bucket turns
their heap ``O(log n)`` push/pop into two ``O(1)`` list operations while
preserving exact ``(time, seq)`` order: the heap entry is always the
*first* event scheduled for its timestamp, and bucket entries follow in
append (= seq) order.  The run loop in :mod:`repro.sim.kernel` drains a
timestamp's heap entry and its bucket as one *batch*.

Two bookkeeping details keep the hybrid exact:

* an *empty* bucket is the shared ``_EMPTY`` marker (no list allocated),
  so unique-timestamp workloads pay one dict hit and nothing else;
* when a run loop stops mid-batch (``stop()``, ``max_events``,
  ``stop_when``), the undrained bucket entries are pushed back into the
  heap *individually* and ``_direct_time`` pins that timestamp to
  heap-direct scheduling, so every event at the interrupted instant --
  restored or newly scheduled -- keeps strict seq order.

``kind_id`` is an interned integer id for the event-kind label
(``"step"``, ``"timer"``, ...): interning happens once per distinct
string, so the hot path never hashes label strings into per-event
records.  ``handle`` is ``None`` on the dominant schedule-and-fire path.
Cancellation comes in two flavours: :meth:`EventQueue.push_cancellable`
allocates an :class:`EventHandle` (the O(1) lazy-cancel trick: the entry
stays queued and the run loop skips it when popped), while the
high-volume cancellable kinds -- timers, netsim message deliveries -- go
through a columnar :class:`EventLane` whose *integer* tokens index
preallocated payload/generation columns, so arming a timer or sending a
message allocates no handle object at all.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

# Tuple-entry layout indices (documented for consumers of pop()).
TIME = 0
SEQ = 1
KIND = 2
PID = 3
CALLBACK = 4
HANDLE = 5

#: One scheduled event: ``(time, seq, kind_id, pid, callback, handle)``.
#: ``handle`` is ``None`` (plain), an :class:`EventHandle` (cancellable)
#: or an ``int`` lane token (in which case ``callback`` is the
#: :class:`EventLane` owning the token).
EventEntry = Tuple[float, int, int, Optional[int], Optional[Callable[[], None]], Any]

#: Shared marker for "timestamp is in the heap with no collisions yet".
#: Falsy and zero-length, so bucket-size arithmetic needs no special
#: case; never mutated.
_EMPTY: tuple = ()

#: Lane tokens pack ``(generation << _SLOT_BITS) | slot``; 32 slot bits
#: bound a lane at ~4e9 *concurrently live* events, far past any run.
_SLOT_BITS = 32
_SLOT_MASK = (1 << _SLOT_BITS) - 1

# ----------------------------------------------------------------------
# Kind interning
# ----------------------------------------------------------------------
_KIND_IDS: dict = {}
_KIND_NAMES: list = []


def intern_kind(kind: str) -> int:
    """Return the stable integer id of an event-kind label.

    Ids are process-global and assigned in first-seen order; they are an
    in-memory optimization only and must never be persisted.
    """
    kid = _KIND_IDS.get(kind)
    if kid is None:
        kid = len(_KIND_NAMES)
        _KIND_IDS[kind] = kid
        _KIND_NAMES.append(kind)
    return kid


def kind_name(kind_id: int) -> str:
    """The label interned as ``kind_id`` (IndexError if never interned)."""
    return _KIND_NAMES[kind_id]


class EventHandle:
    """Cancellable reference to a scheduled event (opt-in).

    Cancellation is lazy: the entry stays in the heap but the run loop
    skips its callback when popped.  Handles exist only for events
    scheduled through the ``*_cancellable`` paths; the dominant
    schedule-and-fire path carries ``None`` in the handle slot and
    allocates nothing beyond the heap tuple.  High-volume cancellable
    kinds use the cheaper :class:`EventLane` integer tokens instead.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips its callback."""
        self.cancelled = True


class EventLane:
    """Columnar fast lane for one high-volume cancellable event kind.

    A lane preallocates parallel *columns* -- a payload slot array and a
    per-slot generation counter -- plus a free list of slot indices.
    Scheduling through a lane stores the payload in a free slot and
    returns an integer **token** (generation + slot packed into one
    int); cancelling or firing bumps the slot's generation so any stale
    queue entry still referencing the old token is skipped when popped
    (the same lazy-cancel contract as :class:`EventHandle`, without the
    per-event handle allocation -- the timer services and the netsim
    message fabric are the intended users).

    ``consume`` is the single per-lane delivery function, called with
    the stored payload when a live token fires; when ``consume`` is
    ``None`` the payload itself must be a zero-argument callable and is
    invoked directly (the timer-service pattern, where every armed timer
    carries its own callback).
    """

    __slots__ = ("kind", "kind_id", "_consume", "_payloads", "_gens", "_free")

    def __init__(
        self,
        kind: str,
        consume: Optional[Callable[[Any], None]] = None,
        capacity: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValueError("lane capacity must be positive")
        self.kind = kind
        self.kind_id = intern_kind(kind)
        self._consume = consume
        self._payloads: List[Any] = [None] * capacity
        self._gens: List[int] = [0] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def acquire(self, payload: Any) -> int:
        """Store ``payload`` in a free slot; return its live token.

        The columns double in place when full, so a lane sized for the
        steady state absorbs bursts without per-event allocation
        afterwards.
        """
        free = self._free
        if not free:
            base = len(self._payloads)
            self._payloads.extend([None] * base)
            self._gens.extend([0] * base)
            free.extend(range(2 * base - 1, base - 1, -1))
        slot = free.pop()
        self._payloads[slot] = payload
        return (self._gens[slot] << _SLOT_BITS) | slot

    def cancel(self, token: int) -> bool:
        """Disarm ``token``; False when it already fired or was cancelled.

        O(1): the queue entry stays queued and dies as *stale* (its
        generation no longer matches) when popped.
        """
        slot = token & _SLOT_MASK
        if self._gens[slot] != token >> _SLOT_BITS:
            return False
        self._gens[slot] += 1
        self._payloads[slot] = None
        self._free.append(slot)
        return True

    def live(self, token: int) -> bool:
        """True while ``token`` is armed (not yet fired or cancelled)."""
        return self._gens[token & _SLOT_MASK] == token >> _SLOT_BITS

    def fire(self, token: int) -> bool:
        """Deliver ``token``'s payload; False when the token is stale.

        Called by the kernel's run loop when a lane entry is popped.
        The slot is released *before* the payload is consumed, so a
        consumer may re-schedule through the lane immediately.
        """
        slot = token & _SLOT_MASK
        gens = self._gens
        if gens[slot] != token >> _SLOT_BITS:
            return False
        payload = self._payloads[slot]
        self._payloads[slot] = None
        gens[slot] += 1
        self._free.append(slot)
        consume = self._consume
        if consume is None:
            payload()
        else:
            consume(payload)
        return True


class EventQueue:
    """A stable min-queue of plain tuple event entries (hybrid storage).

    >>> q = EventQueue()
    >>> q.push(2.0, "b", None)
    >>> q.push(1.0, "a", None)
    >>> kind_name(q.pop()[KIND])
    'a'

    The heap (`_heap`) holds one entry per distinct pending timestamp;
    collisions append to that timestamp's FIFO bucket in ``_buckets``
    (see the module docstring).  The kernel's run loop accesses these
    structures directly, friend-style; their identities are stable (see
    :meth:`clear`).
    """

    __slots__ = ("_heap", "_buckets", "_pool", "_next_seq", "_direct_time")

    #: Recycled bucket lists kept at most this many deep.
    _POOL_DEPTH = 8

    def __init__(self) -> None:
        self._heap: list = []
        self._buckets: dict = {}
        self._pool: list = []
        self._next_seq = itertools.count().__next__
        # Timestamp forced to heap-direct scheduling after a mid-batch
        # stop (NaN matches nothing, so the common path has no flag).
        self._direct_time = float("nan")

    def __len__(self) -> int:
        return len(self._heap) + sum(map(len, self._buckets.values()))

    def __bool__(self) -> bool:
        return bool(self._heap)

    # ------------------------------------------------------------------
    def _insert(self, time: float, entry: EventEntry) -> None:
        """File ``entry`` under ``time``: heap if first at that instant
        (or the instant is pinned heap-direct), its bucket otherwise."""
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            if time != self._direct_time:
                buckets[time] = _EMPTY
            heappush(self._heap, entry)
        elif bucket is _EMPTY:
            if time != self._direct_time:
                buckets[time] = [entry]
            else:
                heappush(self._heap, entry)
        else:
            bucket.append(entry)

    def push(
        self,
        time: float,
        kind: str,
        callback: Optional[Callable[[], None]],
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` at virtual time ``time`` (no handle).

        The fast path: allocates only the entry tuple (plus, first time
        an instant collides, its bucket list).  Scheduling at a NaN time
        is a programming error and raises.
        """
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        self._insert(time, (time, self._next_seq(), kid, pid, callback, None))

    def push_cancellable(
        self,
        time: float,
        kind: str,
        callback: Optional[Callable[[], None]],
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` and return a cancellation handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        kid = _KIND_IDS.get(kind)
        if kid is None:
            kid = intern_kind(kind)
        handle = EventHandle()
        self._insert(time, (time, self._next_seq(), kid, pid, callback, handle))
        return handle

    def push_lane(
        self,
        time: float,
        lane: EventLane,
        payload: Any,
        pid: Optional[int] = None,
    ) -> int:
        """Schedule ``payload`` through ``lane``; return its token."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        token = lane.acquire(payload)
        self._insert(time, (time, self._next_seq(), lane.kind_id, pid, lane, token))
        return token

    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next (possibly cancelled) event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventEntry:
        """Remove and return the next entry tuple.

        When the popped timestamp has a collision bucket, its entries
        are re-filed into the heap individually (their seq numbers keep
        the order exact) and the instant is pinned heap-direct -- this
        is the cold public API; the run loop drains buckets in place.
        """
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        entry = heappop(self._heap)
        time = entry[0]
        bucket = self._buckets.pop(time, _EMPTY)
        if bucket:  # a real, non-empty collision bucket
            heap = self._heap
            for queued in bucket:
                heappush(heap, queued)
            self._direct_time = time
        return entry

    def clear(self) -> None:
        """Drop all pending events (in place; the heap list, bucket dict
        and pool identities are stable so the kernel may hold direct
        references to them)."""
        self._heap.clear()
        self._buckets.clear()
        self._direct_time = float("nan")


__all__ = [
    "CALLBACK",
    "EventEntry",
    "EventHandle",
    "EventLane",
    "EventQueue",
    "HANDLE",
    "KIND",
    "PID",
    "SEQ",
    "TIME",
    "intern_kind",
    "kind_name",
]


# --- kernel-variant rebind (stripped from the compiled build) ---------
# When tools/build_kernel_ext.py has produced repro.sim._ckernel and
# REPRO_KERNEL permits it (see repro.sim.variant), expose the compiled
# classes under the public names; everything above remains the always-
# available pure-Python fallback.  The kind-interning tables must be the
# compiled module's so both variants agree on kind ids.
from repro.sim import variant as _variant

if _variant.want_compiled():
    try:
        from repro.sim import _ckernel as _ckernel
    except Exception as _exc:  # noqa: BLE001 - any import failure -> fallback
        if _variant.requested() == "compiled":
            _variant.mark_python(
                f"REPRO_KERNEL=compiled but repro.sim._ckernel failed to import "
                f"({_exc!r}); pure-Python fallback"
            )
        del _exc
    else:
        EventHandle = _ckernel.EventHandle  # type: ignore[misc]
        EventLane = _ckernel.EventLane  # type: ignore[misc]
        EventQueue = _ckernel.EventQueue  # type: ignore[misc]
        intern_kind = _ckernel.intern_kind
        kind_name = _ckernel.kind_name
        _EMPTY = _ckernel._EMPTY
        _KIND_IDS = _ckernel._KIND_IDS
        _KIND_NAMES = _ckernel._KIND_NAMES
        _variant.mark_compiled()
