"""Crash plans: which process crashes, and when.

The paper's fault model is *crash-stop*: a faulty process halts
prematurely and takes no further step; there is no bound ``t`` on the
number of faults (both algorithms are independent of ``t``, so plans may
crash up to ``n - 1`` processes).  A :class:`CrashPlan` is a pure
description -- the runner consults it before every step, so crashing is
exact to the step granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class CrashPlan:
    """Immutable map from pid to crash time.

    A process absent from ``crash_times`` is *correct* (never crashes).
    ``math.inf`` entries are normalized away at construction.
    """

    n: int
    crash_times: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: Dict[int, float] = {}
        for pid, t in self.crash_times.items():
            if not 0 <= pid < self.n:
                raise ValueError(f"pid {pid} out of range for n={self.n}")
            if t < 0:
                raise ValueError(f"negative crash time {t} for pid {pid}")
            if math.isfinite(t):
                cleaned[pid] = float(t)
        if len(cleaned) >= self.n:
            raise ValueError("at least one process must be correct (t <= n-1)")
        object.__setattr__(self, "crash_times", cleaned)

    # ------------------------------------------------------------------
    def crash_time(self, pid: int) -> float:
        """Crash time of ``pid`` (``inf`` if correct)."""
        return self.crash_times.get(pid, math.inf)

    def is_crashed(self, pid: int, now: float) -> bool:
        """True iff ``pid`` has crashed at or before ``now``."""
        return now >= self.crash_time(pid)

    def is_correct(self, pid: int) -> bool:
        """True iff ``pid`` never crashes in this plan."""
        return pid not in self.crash_times

    @property
    def correct(self) -> FrozenSet[int]:
        """The set of correct processes."""
        return frozenset(p for p in range(self.n) if p not in self.crash_times)

    @property
    def faulty(self) -> FrozenSet[int]:
        """The set of faulty processes."""
        return frozenset(self.crash_times)

    def alive_at(self, now: float) -> FrozenSet[int]:
        """Processes that have not crashed at ``now``."""
        return frozenset(p for p in range(self.n) if not self.is_crashed(p, now))

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def none(n: int) -> "CrashPlan":
        """Fault-free plan."""
        return CrashPlan(n, {})

    @staticmethod
    def single(n: int, pid: int, at: float) -> "CrashPlan":
        """Crash one process at a given time."""
        return CrashPlan(n, {pid: at})

    @staticmethod
    def all_but(n: int, survivor: int, at: float, spacing: float = 0.0) -> "CrashPlan":
        """Crash every process except ``survivor`` (t = n-1 stress).

        Crashes are staggered by ``spacing`` in pid order.
        """
        times: Dict[int, float] = {}
        k = 0
        for pid in range(n):
            if pid == survivor:
                continue
            times[pid] = at + k * spacing
            k += 1
        return CrashPlan(n, times)

    @staticmethod
    def cascade(n: int, pids: Iterable[int], start: float, spacing: float) -> "CrashPlan":
        """Crash the given pids one after another, ``spacing`` apart."""
        times = {pid: start + i * spacing for i, pid in enumerate(pids)}
        return CrashPlan(n, times)

    @staticmethod
    def leader_storms(
        n: int,
        crashes: int,
        start: float,
        gap: float,
        burst: int = 2,
        spacing: float = 1.0,
    ) -> "CrashPlan":
        """Targeted-leader crash storms.

        Both algorithms favour the lexmin candidate, i.e. the
        lowest-numbered live process, so the adversary that repeatedly
        kills *the process about to be elected* crashes pids in
        ascending order -- but in tight **bursts** of up to ``burst``
        crashes ``spacing`` apart, with ``gap`` between storms.  Each
        storm lands just as the previous re-election settles, forcing a
        fresh one.  ``crashes`` may go up to ``n - 1``.
        """
        if crashes >= n:
            raise ValueError(f"can crash at most n-1={n - 1} processes, got {crashes}")
        if burst <= 0 or gap <= 0 or spacing < 0:
            raise ValueError("burst must be positive, gap positive, spacing non-negative")
        times: Dict[int, float] = {}
        for idx in range(crashes):
            storm, slot = divmod(idx, burst)
            times[idx] = start + storm * gap + slot * spacing
        return CrashPlan(n, times)

    @staticmethod
    def random(
        n: int,
        rng: RngRegistry,
        max_failures: Optional[int] = None,
        horizon: float = 1000.0,
        probability: float = 0.3,
    ) -> "CrashPlan":
        """Randomly crash up to ``max_failures`` (default ``n - 1``) processes.

        Each process independently crashes with ``probability`` at a
        uniform time in ``[0, horizon]``; excess crashes beyond the cap
        are dropped deterministically (latest-first survive).
        """
        cap = n - 1 if max_failures is None else min(max_failures, n - 1)
        stream = rng.stream("crash-plan")
        times: Dict[int, float] = {}
        for pid in range(n):
            if stream.random() < probability:
                times[pid] = stream.uniform(0.0, horizon)
        while len(times) > cap:
            # Drop the latest crash: it perturbs the run least.
            latest = max(times, key=lambda p: (times[p], p))
            del times[latest]
        return CrashPlan(n, times)


__all__ = ["CrashPlan"]
