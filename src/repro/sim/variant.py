"""Kernel variant selection: ``REPRO_KERNEL=compiled|python``.

The simulation kernel ships as pure Python, with an *optional* compiled
twin: ``tools/build_kernel_ext.py`` concatenates
:mod:`repro.sim.events` + :mod:`repro.sim.kernel` into a single
``repro.sim._ckernel`` module and compiles it with Cython or mypyc when
either is installed.  At import time :mod:`repro.sim.events` and
:mod:`repro.sim.kernel` consult this module and rebind their public
classes to the compiled ones when

* ``REPRO_KERNEL=compiled`` -- use the extension, falling back to pure
  Python (with the reason recorded here) when it is absent or fails to
  import: wheels-less installs lose nothing;
* ``REPRO_KERNEL`` unset or ``auto`` -- use the extension if present;
* ``REPRO_KERNEL=python`` -- never load the extension (the escape hatch
  for debugging and for byte-identity A/B runs).

:func:`kernel_variant` reports what actually got selected; the perf
baseline records it in its ``meta`` block so BENCH_perf.json values are
interpretable across machines.
"""

from __future__ import annotations

import os
from typing import Tuple

#: Environment variable choosing the kernel implementation.
ENV_KERNEL = "REPRO_KERNEL"

_state = {
    "variant": "python",
    "reason": "pure-Python kernel (default)",
}


def requested() -> str:
    """The normalized ``REPRO_KERNEL`` request: ``python``, ``compiled``
    or ``auto``.  Unknown values fall back to ``python`` (recorded in
    the reason) rather than breaking every import."""
    value = os.environ.get(ENV_KERNEL, "").strip().lower()
    if value in ("", "auto"):
        return "auto"
    if value in ("python", "compiled"):
        return value
    _state["reason"] = f"unknown {ENV_KERNEL} value {value!r}; pure-Python fallback"
    return "python"


def want_compiled() -> bool:
    """Whether import-time selection should try the compiled extension."""
    return requested() in ("compiled", "auto")


def mark_compiled() -> None:
    """Record that the compiled extension is active (called by the
    events module after a successful ``_ckernel`` import)."""
    _state["variant"] = "compiled"
    _state["reason"] = "compiled extension repro.sim._ckernel active"


def mark_python(reason: str) -> None:
    """Record the pure-Python selection and why it happened."""
    _state["variant"] = "python"
    _state["reason"] = reason


def kernel_variant() -> Tuple[str, str]:
    """``(variant, reason)`` of the active kernel implementation."""
    return _state["variant"], _state["reason"]


__all__ = [
    "ENV_KERNEL",
    "kernel_variant",
    "mark_compiled",
    "mark_python",
    "requested",
    "want_compiled",
]
