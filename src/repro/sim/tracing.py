"""Structured run traces.

A :class:`RunTrace` is an append-only log of typed records produced
during a run: periodic leader samples, step counts, crash notifications,
and any custom record an experiment wants.  The analysis layer
(:mod:`repro.analysis`) consumes traces; the runner only produces them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: a timestamped, typed bag of fields."""

    time: float
    kind: str
    fields: Mapping[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class RunTrace:
    """Append-only, queryable log of :class:`TraceRecord`.

    Record kinds used by the library:

    ``leader_sample``
        ``pid``, ``leader`` -- output of the observer ``peek_leader``.
    ``crash``
        ``pid`` -- the process crashed at this instant.
    ``timer_set`` / ``timer_fired``
        ``pid``, ``timeout``, ``duration`` -- timer service activity.
    ``leader_return``
        ``pid``, ``leader``, ``ops`` -- a completed ``leader()``
        invocation by the algorithm itself (used for the Termination
        property and the op-count bound).
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, **fields: Any) -> TraceRecord:
        """Append a record and return it."""
        rec = TraceRecord(time=time, kind=kind, fields=fields)
        self._records.append(rec)
        self._by_kind.setdefault(kind, []).append(rec)
        return rec

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of a kind, in time order."""
        return list(self._by_kind.get(kind, []))

    def last_of_kind(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of a kind, or ``None``."""
        records = self._by_kind.get(kind)
        return records[-1] if records else None

    # ------------------------------------------------------------------
    # Leader-sample helpers (the most common query)
    # ------------------------------------------------------------------
    def leader_samples(self) -> List[Tuple[float, int, int]]:
        """All ``(time, pid, leader)`` observer samples."""
        return [(r.time, r["pid"], r["leader"]) for r in self.of_kind("leader_sample")]

    def leader_samples_by_pid(self) -> Dict[int, List[Tuple[float, int]]]:
        """Per-process list of ``(time, leader)`` samples."""
        out: Dict[int, List[Tuple[float, int]]] = {}
        for t, pid, leader in self.leader_samples():
            out.setdefault(pid, []).append((t, leader))
        return out

    def sample_times(self) -> List[float]:
        """Distinct times at which leader samples were taken."""
        seen: List[float] = []
        last = None
        for t, _, _ in self.leader_samples():
            if t != last:
                seen.append(t)
                last = t
        return seen


__all__ = ["RunTrace", "TraceRecord"]
