"""Structured run traces.

A :class:`RunTrace` is an append-only log of typed records produced
during a run: periodic leader samples, step counts, crash notifications,
and any custom record an experiment wants.  The analysis layer
(:mod:`repro.analysis`) consumes traces; the runner only produces them.

Storage is split by temperature.  The *hot* kinds -- ``leader_sample``,
``timer_set`` and ``timer_fired``, the ones recorded inside the
simulation loop -- are stored as plain scalar row tuples in per-kind
columns (one small tuple per record, no per-record dataclass and no
field dict); :class:`TraceRecord` objects for them are materialized
lazily, and only if somebody asks through the generic query API.  Every
other kind is stored as a :class:`TraceRecord` directly.  The common
queries (:meth:`RunTrace.leader_samples` and friends) read the columns
without copying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

#: Field names of the hot record kinds, in row order after ``time``.
#: A hot row is the tuple ``(time, *fields)``.
HOT_KINDS: Dict[str, Tuple[str, str]] = {
    "leader_sample": ("pid", "leader"),
    "timer_set": ("pid", "timeout"),
    "timer_fired": ("pid", "duration"),
}


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: a timestamped, typed bag of fields."""

    time: float
    kind: str
    fields: Mapping[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup with a default, dict-style."""
        return self.fields.get(key, default)


class RunTrace:
    """Append-only, queryable log of trace records.

    Record kinds used by the library:

    ``leader_sample``
        ``pid``, ``leader`` -- output of the observer ``peek_leader``.
    ``crash``
        ``pid`` -- the process crashed at this instant.
    ``timer_set`` / ``timer_fired``
        ``pid``, ``timeout`` / ``duration`` -- timer service activity.
    ``leader_return``
        ``pid``, ``leader``, ``ops`` -- a completed ``leader()``
        invocation by the algorithm itself (used for the Termination
        property and the op-count bound).
    """

    __slots__ = ("_rows", "_cold_by_kind", "_seq_kinds", "_seq_entries", "_hot_cache")

    def __init__(self) -> None:
        #: kind -> list of hot rows ``(time, f0, f1)``.
        self._rows: Dict[str, List[tuple]] = {kind: [] for kind in HOT_KINDS}
        #: kind -> list of cold TraceRecords.
        self._cold_by_kind: Dict[str, List[TraceRecord]] = {}
        # Global insertion order: parallel lists of kind labels and
        # entries (a hot row tuple or a TraceRecord).  Appending to them
        # stores pointers only -- no per-record allocation.
        self._seq_kinds: List[str] = []
        self._seq_entries: List[Union[tuple, TraceRecord]] = []
        #: kind -> materialized TraceRecord list for hot kinds (extended
        #: incrementally; see :meth:`of_kind`).
        self._hot_cache: Dict[str, List[TraceRecord]] = {}

    def __len__(self) -> int:
        return len(self._seq_entries)

    def __iter__(self) -> Iterator[TraceRecord]:
        hot = HOT_KINDS
        for kind, entry in zip(self._seq_kinds, self._seq_entries):
            if entry.__class__ is tuple:  # hot row; materialize lazily
                fields = hot[kind]
                yield TraceRecord(
                    time=entry[0],
                    kind=kind,
                    fields={fields[0]: entry[1], fields[1]: entry[2]},
                )
            else:
                yield entry  # already a TraceRecord

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, time: float, kind: str, **fields: Any) -> Optional[TraceRecord]:
        """Append a record.

        Hot kinds with exactly their canonical fields are stored as
        scalar rows and return ``None`` (no record object exists yet);
        every other record is stored as a :class:`TraceRecord` and
        returned.
        """
        hot = HOT_KINDS.get(kind)
        if hot is not None and len(fields) == 2:
            try:
                row = (time, fields[hot[0]], fields[hot[1]])
            except KeyError:
                pass
            else:
                self._rows[kind].append(row)
                self._seq_kinds.append(kind)
                self._seq_entries.append(row)
                return None
        rec = TraceRecord(time=time, kind=kind, fields=fields)
        self._cold_by_kind.setdefault(kind, []).append(rec)
        self._seq_kinds.append(kind)
        self._seq_entries.append(rec)
        return rec

    def record_leader_sample(self, time: float, pid: int, leader: int) -> None:
        """Hot path: append one observer sample (one tuple, no dict)."""
        row = (time, pid, leader)
        self._rows["leader_sample"].append(row)
        self._seq_kinds.append("leader_sample")
        self._seq_entries.append(row)

    def record_timer_set(self, time: float, pid: int, timeout: float) -> None:
        """Hot path: append one ``timer_set`` row."""
        row = (time, pid, timeout)
        self._rows["timer_set"].append(row)
        self._seq_kinds.append("timer_set")
        self._seq_entries.append(row)

    def record_timer_fired(self, time: float, pid: int, duration: float) -> None:
        """Hot path: append one ``timer_fired`` row."""
        row = (time, pid, duration)
        self._rows["timer_fired"].append(row)
        self._seq_kinds.append("timer_fired")
        self._seq_entries.append(row)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Sequence[TraceRecord]:
        """All records of a kind, in time order.

        Returns the internal sequence -- treat it as **read-only** (the
        props checkers call this in loops; copying per call was the
        dominant cost of replay).  Hot kinds are materialized into
        :class:`TraceRecord` objects lazily, extending a per-kind cache
        by however many rows appeared since the previous call.
        """
        hot = HOT_KINDS.get(kind)
        if hot is None:
            return self._cold_by_kind.get(kind, [])
        if kind in self._cold_by_kind:
            # Rare mixed case: somebody recorded a hot kind with
            # non-canonical fields (stored as a cold TraceRecord).
            # Rebuild from the global sequence to preserve order.
            return [rec for rec in self if rec.kind == kind]
        rows = self._rows[kind]
        cache = self._hot_cache.get(kind)
        if cache is None:
            cache = self._hot_cache[kind] = []
        if len(cache) < len(rows):
            f0, f1 = hot
            cache.extend(
                TraceRecord(time=row[0], kind=kind, fields={f0: row[1], f1: row[2]})
                for row in rows[len(cache):]
            )
        return cache

    def last_of_kind(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of a kind, or ``None``."""
        hot = HOT_KINDS.get(kind)
        if hot is None:
            records = self._cold_by_kind.get(kind)
            return records[-1] if records else None
        if kind in self._cold_by_kind:
            records = self.of_kind(kind)  # rare mixed case
            return records[-1] if records else None
        rows = self._rows[kind]
        if not rows:
            return None
        row = rows[-1]
        return TraceRecord(
            time=row[0], kind=kind, fields={hot[0]: row[1], hot[1]: row[2]}
        )

    # ------------------------------------------------------------------
    # Hot-row access (the most common queries; no copies)
    # ------------------------------------------------------------------
    def leader_samples(self) -> Sequence[Tuple[float, int, int]]:
        """All ``(time, pid, leader)`` observer samples.

        Returns the internal row list -- treat it as **read-only**.
        Rows are in append order, which for a simulation-produced trace
        is also non-decreasing time order.
        """
        return self._rows["leader_sample"]

    def timer_rows(self, kind: str) -> Sequence[Tuple[float, int, float]]:
        """``(time, pid, timeout|duration)`` rows of a timer kind
        (read-only view of the internal list)."""
        return self._rows[kind]

    def leader_samples_by_pid(self) -> Dict[int, List[Tuple[float, int]]]:
        """Per-process list of ``(time, leader)`` samples."""
        out: Dict[int, List[Tuple[float, int]]] = {}
        for t, pid, leader in self._rows["leader_sample"]:
            out.setdefault(pid, []).append((t, leader))
        return out

    def sample_times(self) -> List[float]:
        """Distinct times at which leader samples were taken."""
        seen: List[float] = []
        last = None
        for t, _, _ in self._rows["leader_sample"]:
            if t != last:
                seen.append(t)
                last = t
        return seen


__all__ = ["HOT_KINDS", "RunTrace", "TraceRecord"]
