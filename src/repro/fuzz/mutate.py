"""Seeded one-axis genome mutations.

Every operator perturbs exactly one :class:`~repro.fuzz.genome.ScenarioGenome`
axis, drawing all randomness from a caller-supplied ``random.Random``
instance -- the fuzz loop owns a single stream seeded from its config,
so the genome sequence is a pure function of ``(seed, corpus)`` (the
determinism tests compare it byte for byte).

Two structural rules keep every mutation a *single* step:

* the ``links`` axis is only mutable while the fault and membership
  plans are empty (both timelines are defined over the sync fabric, so
  re-linking would have to clear them too);
* the ``faults`` and ``membership`` axes are only mutable while the
  links are ``sync``, and each only while the *other* plan is empty --
  composed fault + membership timelines can starve quorums in ways no
  single mutation step could introduce legally.

Fault plans are drawn from the same conservative
:class:`~repro.faults.generator.FaultScheduleGenerator` the chaos
campaigns use, sized for the *smallest* emulated horizon -- so a plan
stays legal (serialized windows, quiet tail) under every horizon a
later axis mutation can derive.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Tuple

from repro.faults.generator import FaultScheduleGenerator
from repro.memory.membership import churn_plan
from repro.fuzz.genome import (
    BASELINE_GENOME,
    DEFAULT_BASE_HORIZON,
    GENOME_ALGORITHMS,
    GENOME_CONSISTENCY,
    GENOME_CRASHES,
    GENOME_DELAYS,
    GENOME_LINKS,
    GENOME_NS,
    GENOME_REPLICAS,
    ScenarioGenome,
)

#: Disturbance windows per generated fault-plan axis value.
MAX_PLAN_FAULTS = 2


def _plan_horizon(base: float) -> float:
    """The horizon fault plans are sized for: the smallest horizon any
    emulated genome can derive (sync links, regular reads)."""
    return base * 1.5


def _pick_other(rng: random.Random, pool: Tuple[str, ...], current: str) -> str:
    """A uniformly drawn pool member different from ``current``."""
    return rng.choice([value for value in pool if value != current])


def _pick_other_int(rng: random.Random, pool: Tuple[int, ...], current: int) -> int:
    return rng.choice([value for value in pool if value != current])


def _mutable_axes(genome: ScenarioGenome) -> List[str]:
    """The axes a single mutation may touch on ``genome``."""
    axes = ["algorithm", "n", "delay", "crash", "backend"]
    if genome.backend == "emulated":
        axes.append("consistency")
        if genome.fault_plan == () and genome.membership_plan == ():
            axes.append("links")
        if genome.links == "sync":
            if genome.membership_plan == ():
                axes.append("faults")
            if genome.fault_plan == ():
                axes.append("membership")
            # Replica-count moves must keep both plans' indices legal
            # (a membership join names the next fresh index, a fault
            # event a current one); offering the axis only on a
            # plan-free genome keeps the mutation single-step.
            if genome.fault_plan == () and genome.membership_plan == ():
                axes.append("replicas")
    return axes


def _fresh_plan(
    genome: ScenarioGenome, rng: random.Random, base_horizon: float
) -> ScenarioGenome:
    """Replace the fault-plan axis with a freshly generated timeline."""
    generator = FaultScheduleGenerator(
        rng.randrange(2**31),
        replicas=genome.replicas,
        horizon=_plan_horizon(base_horizon),
        max_faults=MAX_PLAN_FAULTS,
        quiet_tail=0.45,
    )
    return genome.with_plan(generator.generate(0))


def mutate(
    genome: ScenarioGenome,
    rng: random.Random,
    *,
    base_horizon: float = DEFAULT_BASE_HORIZON,
) -> ScenarioGenome:
    """One uniformly drawn single-axis mutation of ``genome``."""
    axis = rng.choice(_mutable_axes(genome))
    if axis == "algorithm":
        return replace(genome, algorithm=_pick_other(rng, GENOME_ALGORITHMS, genome.algorithm))
    if axis == "n":
        return replace(genome, n=_pick_other_int(rng, GENOME_NS, genome.n))
    if axis == "delay":
        return replace(genome, delay=_pick_other(rng, GENOME_DELAYS, genome.delay))
    if axis == "crash":
        return replace(genome, crash=_pick_other(rng, GENOME_CRASHES, genome.crash))
    if axis == "backend":
        if genome.backend == "shared":
            return replace(genome, backend="emulated")
        # Dropping back to shared memory resets every emulated-only axis
        # (validation requires them at baseline there).
        return ScenarioGenome(
            algorithm=genome.algorithm,
            backend="shared",
            n=genome.n,
            delay=genome.delay,
            crash=genome.crash,
        )
    if axis == "consistency":
        return replace(
            genome, consistency=_pick_other(rng, GENOME_CONSISTENCY, genome.consistency)
        )
    if axis == "links":
        return replace(genome, links=_pick_other(rng, GENOME_LINKS, genome.links))
    if axis == "replicas":
        return replace(genome, replicas=_pick_other_int(rng, GENOME_REPLICAS, genome.replicas))
    if axis == "membership":
        # Clear a non-empty plan half the time, else install the
        # canonical replace-one-replica churn.  Sized for the smallest
        # emulated horizon (like fault plans), so the join/leave pair
        # always lands mid-run with a quiet tail; the churn itself never
        # drops below a quorum (join first, then a single leave).
        if genome.membership_plan and rng.random() < 0.5:
            return replace(genome, membership_plan=())
        plan = churn_plan(genome.replicas, _plan_horizon(base_horizon))
        return replace(genome, membership_plan=plan.events)
    # axis == "faults": clear a non-empty plan half the time, else draw
    # a fresh timeline (also the only way *onto* the axis).
    if genome.fault_plan and rng.random() < 0.5:
        return replace(genome, fault_plan=())
    return _fresh_plan(genome, rng, base_horizon)


def random_genome(
    rng: random.Random,
    *,
    base_horizon: float = DEFAULT_BASE_HORIZON,
    max_mutations: int = 3,
) -> ScenarioGenome:
    """A genome ``0..max_mutations`` single-axis steps from baseline.

    Zero steps yields the baseline itself, so a seeded population
    always contains the origin of the space.
    """
    genome = BASELINE_GENOME
    for _ in range(rng.randint(0, max_mutations)):
        genome = mutate(genome, rng, base_horizon=base_horizon)
    return genome


__all__ = ["MAX_PLAN_FAULTS", "mutate", "random_genome"]
