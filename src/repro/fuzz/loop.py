"""The coverage-guided fuzz loop: mutate, batch-run, judge, shrink.

One iteration builds a batch of unseen genomes -- mutations of corpus
members, with a seeded-random infusion -- and runs it through the
parallel experiment engine (one :class:`~repro.engine.spec.ExperimentSpec`
per algorithm in the batch, ``cache=False``: fuzz cells are one-shot,
caching them would only bloat the result store).  Every summary is
judged twice:

* **novelty** -- its :func:`~repro.fuzz.coverage.signature` is offered
  to the corpus's :class:`~repro.fuzz.coverage.TraceFeatureMap`; novel
  genomes join the corpus and become mutation parents;
* **violation** -- the chaos oracle
  (:func:`repro.faults.campaign.violation_count`: theorem monitors +
  history audit + write-ack integrity) must be zero.  Violating genomes
  are shrunk (:func:`repro.fuzz.shrink.shrink_genome`, replaying
  in-process with the exact worker semantics) and pinned as regression
  payloads that replay through the scenario registry.

Determinism: every random draw comes from one ``Random`` stream seeded
by the config, every run uses the config seed, and batches are
deduplicated by genome content key -- so the genome sequence, the
coverage map and every verdict are a pure function of
``(config, corpus)``.

This module imports the workloads/engine stack; like
:mod:`repro.faults.campaign` it is deliberately not re-exported from
:mod:`repro.fuzz` -- import it explicitly, as ``repro fuzz`` does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.driver import run_experiment
from repro.engine.spec import AlgorithmRef, ExperimentSpec, ScenarioRef
from repro.engine.summary import RunSummary, summarize_run
from repro.faults.campaign import violation_count
from repro.faults.plan import FaultEvent
from repro.memory.membership import MembershipEvent
from repro.fuzz.corpus import Corpus
from repro.fuzz.coverage import signature
from repro.fuzz.genome import DEFAULT_BASE_HORIZON, ScenarioGenome
from repro.fuzz.mutate import mutate, random_genome
from repro.fuzz.shrink import GenomeShrinkResult, shrink_genome
from repro.workloads.registry import build_scenario, resolve_algorithm

#: Probability of mutating a corpus parent (vs drawing a random genome)
#: once the corpus is non-empty.
PARENT_BIAS = 0.75

#: Give up composing a batch after this many duplicate draws per slot.
DEDUP_ATTEMPTS = 12

#: Fault-plan shape of :func:`amnesia_probe`, as fractions of the plan
#: horizon: two serialized crash/recover pairs on distinct replicas.
#: One amnesiac replica alone cannot corrupt a majority quorum -- the
#: staleness only becomes observable once the *second* crash removes a
#: fresh replica and forces reads to count the amnesiac one.
AMNESIA_PROBE_SHAPE = (
    ("replica-crash", 0.06, 1),
    ("replica-recover", 0.14, 1),
    ("replica-crash", 0.25, 0),
    ("replica-recover", 0.32, 0),
)


#: Membership timeline of :func:`membership_probe`, as fractions of the
#: plan horizon: the entire initial config is replaced (join 3, join 4,
#: leave 0, leave 1), then :data:`MEMBERSHIP_PROBE_CRASH` kills the last
#: original replica so every read quorum must be served by joiners
#: alone.  Under dual-quorum windows the state transfer has synced the
#: joiners; under the broken ``single-config`` mode they serve whatever
#: they overheard and the history audit goes red deterministically.
MEMBERSHIP_PROBE_SHAPE = (
    ("join", 0.12, 3),
    ("join", 0.18, 4),
    ("leave", 0.24, 0),
    ("leave", 0.30, 1),
)

#: The replica-crash accompanying :data:`MEMBERSHIP_PROBE_SHAPE`
#: (kind, horizon fraction, replica index).
MEMBERSHIP_PROBE_CRASH = ("replica-crash", 0.5, 2)


def amnesia_probe(base_horizon: float = DEFAULT_BASE_HORIZON) -> ScenarioGenome:
    """The canonical recover-without-resync canary genome.

    An emulated baseline genome carrying the two-pair crash/recover
    timeline of :data:`AMNESIA_PROBE_SHAPE`, scaled to ``base_horizon``.
    On a correct emulation it runs clean; under the broken
    ``resync=False`` mode the oracles must flag it -- ``repro fuzz
    --no-resync`` seeds its population with this probe so the negative
    control is a deterministic canary rather than a lottery over
    generated fault plans.
    """
    horizon = 1.5 * base_horizon  # the sync-links emulated horizon
    events = tuple(
        FaultEvent(kind=kind, at=fraction * horizon, replica=replica)
        for kind, fraction, replica in AMNESIA_PROBE_SHAPE
    )
    return ScenarioGenome(backend="emulated", fault_plan=events)


def membership_probe(base_horizon: float = DEFAULT_BASE_HORIZON) -> ScenarioGenome:
    """The canonical broken-reconfiguration canary genome.

    An emulated baseline genome carrying the full-config-turnover
    membership timeline of :data:`MEMBERSHIP_PROBE_SHAPE` plus the
    :data:`MEMBERSHIP_PROBE_CRASH` fault, scaled to ``base_horizon``.
    On a correct emulation it runs clean; under the broken
    ``transition="single-config"`` mode the history audit must flag it
    -- ``repro fuzz --broken-transition`` seeds its population with
    this probe so the negative control is a deterministic canary rather
    than a lottery over generated membership plans.
    """
    horizon = 1.5 * base_horizon  # the sync-links emulated horizon
    membership = tuple(
        MembershipEvent(kind=kind, at=fraction * horizon, replica=replica)
        for kind, fraction, replica in MEMBERSHIP_PROBE_SHAPE
    )
    kind, fraction, replica = MEMBERSHIP_PROBE_CRASH
    fault = (FaultEvent(kind=kind, at=fraction * horizon, replica=replica),)
    return ScenarioGenome(
        backend="emulated", fault_plan=fault, membership_plan=membership
    )


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz run (all plain data)."""

    #: Run seed: the mutation stream and every cell's run seed.
    seed: int = 0
    #: Total genomes to run (shrink-oracle replays not counted).
    budget: int = 50
    #: Genomes per engine batch.
    batch: int = 16
    #: Worker processes per batch (None/0 -> one per CPU).
    jobs: Optional[int] = None
    #: Base horizon genomes derive their run horizons from.
    horizon: float = DEFAULT_BASE_HORIZON
    #: Delta-debug violating genomes down to minimal pinned repros.
    shrink: bool = True
    #: Mutation steps per seeded random genome.
    max_mutations: int = 3
    #: ``False`` forces the DELIBERATELY BROKEN recover-without-resync
    #: emulation mode onto every cell (the negative oracle: the fuzzer
    #: is expected to catch, shrink and pin it).
    resync: bool = True
    #: ``"single-config"`` forces the DELIBERATELY BROKEN
    #: old-quorums-only transition mode onto every cell (the membership
    #: negative oracle, same contract as ``resync=False``).
    transition: str = "dual-quorum"


@dataclass
class FuzzViolation:
    """One violating genome, with its shrunk pinned repro."""

    #: The genome as the fuzzer first found it.
    genome: ScenarioGenome
    #: Oracle count of the violating run.
    violations: int
    #: The mutation-minimal violating genome (None when shrinking off).
    shrunk: Optional[ScenarioGenome] = None
    #: In-process replays the shrinker spent.
    oracle_runs: int = 0
    #: Engine-ready pinned repro payload (``fuzz-cell`` kwargs).
    repro: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FuzzResult:
    """What one fuzz run produced."""

    config: FuzzConfig
    genomes_run: int = 0
    #: Signatures first reached by this run.
    new_signatures: int = 0
    #: Coverage-map size after the run.
    total_signatures: int = 0
    #: Corpus size after the run.
    corpus_size: int = 0
    violations: List[FuzzViolation] = field(default_factory=list)
    #: Engine cell failures (infrastructure errors, not oracle verdicts).
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every genome ran clean."""
        return not self.violations and not self.failures

    def to_jsonable(self) -> Dict[str, Any]:
        """The ``repro fuzz --json`` payload."""
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "horizon": self.config.horizon,
            "resync": self.config.resync,
            "transition": self.config.transition,
            "genomes_run": self.genomes_run,
            "new_signatures": self.new_signatures,
            "total_signatures": self.total_signatures,
            "corpus_size": self.corpus_size,
            "failures": list(self.failures),
            "violations": [
                {
                    "genome": v.genome.to_jsonable(),
                    "violations": v.violations,
                    "shrunk": None if v.shrunk is None else v.shrunk.to_jsonable(),
                    "complexity": (v.shrunk or v.genome).complexity(),
                    "oracle_runs": v.oracle_runs,
                    "repro": v.repro,
                }
                for v in self.violations
            ],
        }


# ----------------------------------------------------------------------
def _cell_kwargs(genome: ScenarioGenome, config: FuzzConfig) -> Dict[str, Any]:
    """The ``fuzz-cell`` kwargs for ``genome`` under ``config`` (the
    config's negative-control override folds into the resync knob)."""
    kwargs = genome.scenario_kwargs(config.horizon)
    kwargs["resync"] = genome.resync and config.resync
    if config.transition != "dual-quorum":
        kwargs["transition"] = config.transition
    return kwargs


def replay_genome(genome: ScenarioGenome, config: FuzzConfig) -> RunSummary:
    """Run one genome in-process with the exact worker semantics.

    Mirrors :func:`repro.engine.worker.run_cell` fast mode (no read
    log, no event trace, default census window), so the shrinker's
    oracle sees byte-identical summaries to the batched forward path.
    """
    scenario = build_scenario("fuzz-cell", _cell_kwargs(genome, config))
    result = scenario.run(
        resolve_algorithm(genome.algorithm),
        seed=config.seed,
        log_reads=False,
        trace_events=False,
    )
    return summarize_run(
        result,
        scenario_name=scenario.name,
        margin=scenario.margin,
        assumption=scenario.assumption,
    )


def pinned_repro(genome: ScenarioGenome, config: FuzzConfig) -> Dict[str, Any]:
    """The engine-ready pinned repro payload for ``genome``.

    Same shape as the chaos campaigns': factory + kwargs + algorithm +
    seed (``repro run``-able via the registry), plus the genome itself
    so the corpus stays mutation-aware.
    """
    return {
        "factory": "fuzz-cell",
        "kwargs": _cell_kwargs(genome, config),
        "algorithm": genome.algorithm,
        "seed": config.seed,
        "genome": genome.to_jsonable(),
    }


def _run_batch(
    genomes: Sequence[ScenarioGenome], config: FuzzConfig
) -> Tuple[List[Optional[RunSummary]], List[str]]:
    """Run a deduplicated batch through the parallel engine.

    Cells are grouped into one spec per algorithm (a spec is a grid, so
    mixed-algorithm batches would run every algorithm on every
    scenario).  Returns per-genome summaries (None where the cell
    failed) plus the failure descriptions.
    """
    summaries: List[Optional[RunSummary]] = [None] * len(genomes)
    failures: List[str] = []
    by_algorithm: Dict[str, List[int]] = {}
    for index, genome in enumerate(genomes):
        by_algorithm.setdefault(genome.algorithm, []).append(index)
    for algorithm in sorted(by_algorithm):
        slots = by_algorithm[algorithm]
        spec = ExperimentSpec(
            name="fuzz",
            algorithms=(AlgorithmRef(label=algorithm, target=algorithm),),
            scenarios=tuple(
                ScenarioRef.make("fuzz-cell", _cell_kwargs(genomes[i], config))
                for i in slots
            ),
            seeds=(config.seed,),
        )
        report = run_experiment(spec, jobs=config.jobs, cache=False, strict=False)
        failed_keys = {outcome.key for outcome in report.failures}
        rows = iter(report.rows)
        for slot, cell in zip(slots, spec.cells()):
            if cell.key in failed_keys:
                continue
            summaries[slot] = next(rows)
        for outcome in report.failures:
            failures.append(f"{outcome.key}: {outcome.error.strip().splitlines()[-1]}")
    return summaries, failures


# ----------------------------------------------------------------------
def run_fuzz(
    config: FuzzConfig,
    *,
    corpus_dir: Optional[Path] = None,
    initial: Sequence[ScenarioGenome] = (),
    progress: Optional[Callable[[ScenarioGenome, RunSummary, bool, int], None]] = None,
) -> FuzzResult:
    """Run one coverage-guided fuzz session.

    ``initial`` genomes are run first (the negative-control tests
    inject hand-built genomes this way); they count against the budget.
    ``progress`` is an optional ``callable(genome, summary, novel,
    violations)`` hook for per-genome CLI lines.
    """
    rng = random.Random(f"fuzz:{config.seed}")
    corpus = Corpus.load(corpus_dir)
    result = FuzzResult(config=config)
    seen = set(corpus.genomes)
    pending: List[ScenarioGenome] = []
    for genome in initial:
        if genome.key() not in seen:
            seen.add(genome.key())
            pending.append(genome)

    def next_batch() -> List[ScenarioGenome]:
        batch: List[ScenarioGenome] = []
        want = min(config.batch, config.budget - result.genomes_run)
        while pending and len(batch) < want:
            batch.append(pending.pop(0))
        parents = corpus.members()
        attempts = 0
        while len(batch) < want and attempts < want * DEDUP_ATTEMPTS:
            attempts += 1
            if parents and rng.random() < PARENT_BIAS:
                genome = mutate(
                    parents[rng.randrange(len(parents))],
                    rng,
                    base_horizon=config.horizon,
                )
            else:
                genome = random_genome(
                    rng,
                    base_horizon=config.horizon,
                    max_mutations=config.max_mutations,
                )
            if genome.key() in seen:
                continue
            seen.add(genome.key())
            batch.append(genome)
        return batch

    while result.genomes_run < config.budget:
        batch = next_batch()
        if not batch:
            break  # mutation space locally exhausted around this corpus
        summaries, failures = _run_batch(batch, config)
        result.failures.extend(failures)
        result.genomes_run += len(batch)
        for genome, summary in zip(batch, summaries):
            if summary is None:
                continue
            novel = corpus.coverage.observe(signature(summary))
            if novel:
                result.new_signatures += 1
                corpus.add_genome(genome)
            count = violation_count(summary)
            if progress is not None:
                progress(genome, summary, novel, count)
            if count == 0:
                continue
            violation = FuzzViolation(genome=genome, violations=count)
            if config.shrink:
                shrunk: GenomeShrinkResult = shrink_genome(
                    genome,
                    lambda candidate: violation_count(
                        replay_genome(candidate, config)
                    )
                    > 0,
                )
                violation.shrunk = shrunk.genome
                violation.oracle_runs = shrunk.oracle_runs
                violation.repro = pinned_repro(shrunk.genome, config)
                corpus.add_regression(shrunk.genome, violation.repro)
            else:
                violation.repro = pinned_repro(genome, config)
                corpus.add_regression(genome, violation.repro)
            result.violations.append(violation)

    corpus.save_coverage(config.horizon)
    result.total_signatures = len(corpus.coverage)
    result.corpus_size = len(corpus.genomes)
    return result


# ----------------------------------------------------------------------
def replay_regressions(
    corpus_dir: Path, *, jobs: Optional[int] = None
) -> List[Tuple[str, Dict[str, Any], int]]:
    """Re-run every pinned regression in ``corpus_dir``.

    Returns ``(key, payload, violation_count)`` per regression, in
    deterministic key order.  A fixed regression replays with zero
    violations; an unfixed one stays red -- ``repro fuzz --replay``
    exits non-zero on any red entry.  ``jobs`` is accepted for CLI
    symmetry; replays are in-process (each payload pins one cell).
    """
    del jobs  # one cell per payload; the engine would add no parallelism
    out: List[Tuple[str, Dict[str, Any], int]] = []
    corpus = Corpus.load(corpus_dir)
    for key, payload in corpus.regression_items():
        scenario = build_scenario(payload["factory"], payload["kwargs"])
        run = scenario.run(
            resolve_algorithm(payload["algorithm"]),
            seed=int(payload["seed"]),
            log_reads=False,
            trace_events=False,
        )
        summary = summarize_run(
            run,
            scenario_name=scenario.name,
            margin=scenario.margin,
            assumption=scenario.assumption,
        )
        out.append((key, payload, violation_count(summary)))
    return out


__all__ = [
    "AMNESIA_PROBE_SHAPE",
    "DEDUP_ATTEMPTS",
    "FuzzConfig",
    "FuzzResult",
    "FuzzViolation",
    "MEMBERSHIP_PROBE_CRASH",
    "MEMBERSHIP_PROBE_SHAPE",
    "PARENT_BIAS",
    "amnesia_probe",
    "membership_probe",
    "pinned_repro",
    "replay_genome",
    "replay_regressions",
    "run_fuzz",
]
