"""Typed scenario genomes: one point of the full scenario space.

A :class:`ScenarioGenome` composes every axis the repo's workloads vary
-- algorithm, memory backend, membership size, delay model, crash plan,
replica count, link model, consistency level, and a
:mod:`repro.faults` timeline -- into one frozen, JSON-round-trippable
value object (the fuzz analogue of :class:`~repro.faults.plan.FaultPlan`).
The coverage-guided fuzzer (:mod:`repro.fuzz.loop`) mutates genomes one
axis at a time (:mod:`repro.fuzz.mutate`) and shrinks violating ones
back toward :data:`BASELINE_GENOME` (:mod:`repro.fuzz.shrink`), so the
genome's :meth:`~ScenarioGenome.complexity` -- its mutation distance
from the baseline -- is the fuzzer's size metric.

Axis vocabularies are deliberately *conservative*: every member keeps
the environment inside the paper's AWB assumption (and the emulation
correct by construction), so on a clean tree the oracles must pass on
every reachable genome.  Known-negative axes -- ``corruption`` links,
which deliberately break the Theorem 1 audit, and the sub-AWB timer
families -- are excluded; they stay reachable by hand-built scenarios,
not by the fuzzer.

Horizons are *derived*, not a genome axis: substrate choices that slow
every register access (emulation, retransmitting link models, atomic
write-back reads) scale the horizon up so "did not stabilize" keeps
meaning a bug rather than an under-provisioned run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.memory.membership import TRANSITION_MODES, MembershipEvent, MembershipPlan

#: Algorithms the fuzzer composes.  Algorithm 2's hand-shake needs
#: roughly 10x the horizon of the Algorithm 1 family under identical
#: timers (see EXPERIMENTS.md), so it keeps its own dedicated suites
#: (``repro check``, the backend-equivalence cells) instead of inflating
#: every fuzz batch's horizon.
GENOME_ALGORITHMS: Tuple[str, ...] = ("alg1", "alg1-nwnr", "alg1-no-timer")

#: Memory backends (mirrors :data:`repro.memory.backend.BACKENDS`).
GENOME_BACKENDS: Tuple[str, ...] = ("shared", "emulated")

#: Delay-model families (subset of the scenario factories' adversaries).
GENOME_DELAYS: Tuple[str, ...] = ("uniform", "gst-ramp", "bursts")

#: Process-crash plans; ``minority-cascade`` keeps a majority alive.
GENOME_CRASHES: Tuple[str, ...] = ("none", "leader", "minority-cascade")

#: Replica-fabric link models (emulated backend only).  ``corruption``
#: is excluded: it is the known-negative adversary the Theorem 1 audit
#: is *expected* to fail under.
GENOME_LINKS: Tuple[str, ...] = ("sync", "lossy", "gst-ramp", "duplication")

#: Consistency levels of the emulated registers.
GENOME_CONSISTENCY: Tuple[str, ...] = ("regular", "atomic")

#: Membership sizes.
GENOME_NS: Tuple[int, ...] = (3, 4, 5)

#: Replica counts (odd, so majorities are strict).
GENOME_REPLICAS: Tuple[int, ...] = (3, 5)

#: Base horizon every derived horizon scales from (the shared-backend
#: run length).  The fuzz loop's ``horizon`` knob overrides it.
DEFAULT_BASE_HORIZON = 3000.0


@dataclass(frozen=True)
class ScenarioGenome:
    """One scenario-space point, as plain frozen data.

    The defaults *are* the baseline genome: Algorithm 1 on shared
    memory, three processes, uniform delays, fault-free.  Validation
    canonicalizes the space -- a shared-backend genome must keep every
    emulated-only axis at its baseline value, so two genomes that would
    build identical scenarios are identical values (the corpus dedup
    relies on this).
    """

    algorithm: str = "alg1"
    backend: str = "shared"
    n: int = 3
    delay: str = "uniform"
    crash: str = "none"
    replicas: int = 3
    links: str = "sync"
    consistency: str = "regular"
    fault_plan: Tuple[FaultEvent, ...] = ()
    #: ``False`` switches the emulation to the deliberately broken
    #: recover-without-resync mode.  The fuzzer never mutates this axis;
    #: it exists so the negative-control tests can inject a genome the
    #: oracles *must* catch.
    resync: bool = True
    #: Dynamic-membership timeline of the emulated replica set
    #: (:mod:`repro.memory.membership`); empty = fixed membership.
    membership_plan: Tuple[MembershipEvent, ...] = ()
    #: ``"single-config"`` switches transition windows to the
    #: deliberately broken old-quorums-only mode.  Like ``resync`` the
    #: fuzzer never mutates this axis; it is the membership
    #: negative-control hook.
    transition: str = "dual-quorum"

    def __post_init__(self) -> None:
        if self.algorithm not in GENOME_ALGORITHMS:
            raise ValueError(
                f"unknown genome algorithm {self.algorithm!r}; "
                f"choose from {list(GENOME_ALGORITHMS)}"
            )
        if self.backend not in GENOME_BACKENDS:
            raise ValueError(
                f"unknown genome backend {self.backend!r}; "
                f"choose from {list(GENOME_BACKENDS)}"
            )
        if self.n not in GENOME_NS:
            raise ValueError(f"genome n must be one of {list(GENOME_NS)}, got {self.n}")
        if self.delay not in GENOME_DELAYS:
            raise ValueError(
                f"unknown genome delay {self.delay!r}; choose from {list(GENOME_DELAYS)}"
            )
        if self.crash not in GENOME_CRASHES:
            raise ValueError(
                f"unknown genome crash {self.crash!r}; choose from {list(GENOME_CRASHES)}"
            )
        if self.replicas not in GENOME_REPLICAS:
            raise ValueError(
                f"genome replicas must be one of {list(GENOME_REPLICAS)}, "
                f"got {self.replicas}"
            )
        if self.links not in GENOME_LINKS:
            raise ValueError(
                f"unknown genome links {self.links!r}; choose from {list(GENOME_LINKS)}"
            )
        if self.consistency not in GENOME_CONSISTENCY:
            raise ValueError(
                f"unknown genome consistency {self.consistency!r}; "
                f"choose from {list(GENOME_CONSISTENCY)}"
            )
        if self.transition not in TRANSITION_MODES:
            raise ValueError(
                f"unknown genome transition {self.transition!r}; "
                f"choose from {list(TRANSITION_MODES)}"
            )
        if self.backend == "shared":
            off_axis = {
                "replicas": (self.replicas, 3),
                "links": (self.links, "sync"),
                "consistency": (self.consistency, "regular"),
                "fault_plan": (self.fault_plan, ()),
                "resync": (self.resync, True),
                "membership_plan": (self.membership_plan, ()),
                "transition": (self.transition, "dual-quorum"),
            }
            dirty = [k for k, (got, want) in off_axis.items() if got != want]
            if dirty:
                raise ValueError(
                    f"shared-backend genome must keep emulated axes at baseline; "
                    f"off-baseline: {dirty}"
                )
        if self.fault_plan:
            if self.links != "sync":
                raise ValueError(
                    "fault plans are defined over the deterministic sync fabric; "
                    f"got links={self.links!r}"
                )
            FaultPlan(self.fault_plan).validate(self.replicas)
        if self.membership_plan:
            if self.links != "sync":
                raise ValueError(
                    "membership plans are defined over the deterministic sync "
                    f"fabric; got links={self.links!r}"
                )
            MembershipPlan(self.membership_plan).validate(self.replicas)

    # ------------------------------------------------------------------
    def horizon(self, base: float = DEFAULT_BASE_HORIZON) -> float:
        """The derived run horizon for this genome.

        Substrate axes that slow every register access scale it up:
        the ABD emulation adds a quorum round trip per access (x1.5),
        retransmitting link models stretch the round trips (x4/3), and
        atomic write-back reads double the read cost (x1.5).
        """
        h = base
        if self.backend == "emulated":
            h *= 1.5
            if self.links in ("lossy", "gst-ramp"):
                h *= 4.0 / 3.0
            if self.consistency == "atomic":
                h *= 1.5
        return h

    def scenario_kwargs(self, base: float = DEFAULT_BASE_HORIZON) -> Dict[str, Any]:
        """The ``fuzz-cell`` factory kwargs this genome pins down.

        Plain JSON data (the fault plan in its list-of-dicts form), so
        the payload travels through :class:`~repro.engine.spec.ScenarioRef`
        content hashes and replays via
        :func:`repro.workloads.registry.build_scenario`.
        """
        plan: Optional[List[Dict[str, Any]]] = None
        if self.fault_plan:
            plan = FaultPlan(self.fault_plan).to_jsonable()
        membership: Optional[List[Dict[str, Any]]] = None
        if self.membership_plan:
            membership = MembershipPlan(self.membership_plan).to_jsonable()
        return {
            "n": self.n,
            "horizon": self.horizon(base),
            "delay": self.delay,
            "crash": self.crash,
            "backend": self.backend,
            "replicas": self.replicas,
            "links": self.links,
            "consistency": self.consistency,
            "plan": plan,
            "resync": self.resync,
            "membership": membership,
            "transition": self.transition,
        }

    def complexity(self) -> int:
        """Mutation distance from :data:`BASELINE_GENOME`.

        One step per axis that differs from the baseline, plus one step
        per fault group (each group is one injected disturbance).  The
        shrinker minimizes exactly this.
        """
        steps = 0
        baseline = BASELINE_GENOME
        for f in fields(self):
            if f.name == "fault_plan":
                continue
            if getattr(self, f.name) != getattr(baseline, f.name):
                steps += 1
        steps += len(FaultPlan(self.fault_plan).groups())
        return steps  # membership_plan/transition count via the field loop

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """The plain-JSON form (the corpus file payload)."""
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "n": self.n,
            "delay": self.delay,
            "crash": self.crash,
            "replicas": self.replicas,
            "links": self.links,
            "consistency": self.consistency,
            "fault_plan": FaultPlan(self.fault_plan).to_jsonable(),
            "resync": self.resync,
            "membership_plan": MembershipPlan(self.membership_plan).to_jsonable(),
            "transition": self.transition,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "ScenarioGenome":
        """Rebuild a genome from :meth:`to_jsonable` output."""
        data = dict(payload)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown genome key(s): {sorted(unknown)}")
        plan = FaultPlan.from_jsonable(data.pop("fault_plan", None))
        membership = MembershipPlan.from_jsonable(data.pop("membership_plan", None))
        init: Dict[str, Any] = {k: v for k, v in data.items() if k in known}
        init["fault_plan"] = plan.events
        init["membership_plan"] = membership.events
        return cls(**init)

    def key(self) -> str:
        """Stable content digest (corpus file names, dedup sets)."""
        canon = json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]

    def with_plan(self, plan: FaultPlan) -> "ScenarioGenome":
        """This genome with its fault-plan axis replaced."""
        return replace(self, fault_plan=plan.events)


#: The origin of the mutation space: Algorithm 1, shared memory, three
#: processes, uniform delays, fault-free.
BASELINE_GENOME = ScenarioGenome()


__all__ = [
    "BASELINE_GENOME",
    "DEFAULT_BASE_HORIZON",
    "GENOME_ALGORITHMS",
    "GENOME_BACKENDS",
    "GENOME_CONSISTENCY",
    "GENOME_CRASHES",
    "GENOME_DELAYS",
    "GENOME_LINKS",
    "GENOME_NS",
    "GENOME_REPLICAS",
    "ScenarioGenome",
]
