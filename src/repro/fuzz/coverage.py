"""Trace-feature coverage: run summaries bucketed into signatures.

The fuzzer's novelty oracle.  :func:`signature` compresses a
:class:`~repro.engine.summary.RunSummary` into a tuple of bucketed
behavioural features -- leader-churn counts, stabilization deciles,
retransmission depth, recovery/resync counts, the quorum write-back,
reconfiguration and message censuses, the audit-op census -- and a
:class:`TraceFeatureMap` keeps the set of signatures the corpus has
reached, AFL-style: a genome whose run lands in a fresh signature is
novel and joins the corpus; one that re-treads a known signature is
discarded.

Counters are log2-bucketed (:func:`bucket`): the interesting difference
between runs is *orders* of retransmission or churn, not exact counts,
and coarse buckets keep the signature space small enough that a modest
corpus can saturate it.  Only behavioural outcomes feed the signature
-- configuration echoes (backend, consistency level) stay out, so a
genome earns corpus residency by *doing* something new, not by being
configured differently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

#: Cap on the small exact-count features (recoveries, resyncs, forever
#: writers): beyond this many, more of the same is not more coverage.
SMALL_COUNT_CAP = 4

#: A signature: ``(feature name, bucketed value)`` pairs, fixed order.
Signature = Tuple[Tuple[str, Any], ...]


def bucket(value: int) -> int:
    """Log2 bucket of a non-negative counter.

    0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... (``value.bit_length()``).
    """
    return max(0, int(value)).bit_length()


def _decile(time: Any, horizon: float) -> int:
    """Stabilization decile within the horizon; -1 = never stabilized."""
    if time is None or horizon <= 0:
        return -1
    return min(9, max(0, int(10.0 * float(time) / horizon)))


def signature(summary: Any) -> Signature:
    """The coverage signature of one run summary.

    Duck-typed over :class:`~repro.engine.summary.RunSummary` fields so
    the module stays import-light; absent fields bucket as zero.
    """

    def count(name: str) -> int:
        return int(getattr(summary, name, 0) or 0)

    return (
        ("stabilized", bool(getattr(summary, "stabilized", False))),
        ("leader_correct", bool(getattr(summary, "leader_correct", False))),
        ("stab_decile", _decile(
            getattr(summary, "stabilization_time", None),
            float(getattr(summary, "horizon", 0.0) or 0.0),
        )),
        ("churn", bucket(count("leader_changes"))),
        ("suspicions", bucket(count("suspicion_writes_total"))),
        ("retransmissions", bucket(count("retransmissions"))),
        ("recoveries", min(count("recoveries"), SMALL_COUNT_CAP)),
        ("resyncs", min(count("resyncs"), SMALL_COUNT_CAP)),
        ("write_backs", bucket(count("write_backs"))),
        ("configs_installed", min(count("configs_installed"), SMALL_COUNT_CAP)),
        ("dual_quorum_ops", bucket(count("dual_quorum_ops"))),
        ("transfer_rounds", min(count("transfer_rounds"), SMALL_COUNT_CAP)),
        ("messages", bucket(count("messages_sent"))),
        ("audit_ops", bucket(count("audit_ops"))),
        ("single_writer", bool(getattr(summary, "single_writer", False))),
        ("forever_writers", min(count("forever_writer_count"), SMALL_COUNT_CAP)),
    )


def signature_key(sig: Signature) -> str:
    """Compact stable string form (the coverage-map dictionary key)."""
    return "|".join(f"{name}={value}" for name, value in sig)


class TraceFeatureMap:
    """The set of signatures reached so far, with hit counts.

    JSON round-trippable so the persisted corpus carries its coverage
    across nightly runs.
    """

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = dict(counts or {})

    def __len__(self) -> int:
        return len(self._counts)

    def observe(self, sig: Signature) -> bool:
        """Record one run's signature; True when it is novel."""
        key = signature_key(sig)
        novel = key not in self._counts
        self._counts[key] = self._counts.get(key, 0) + 1
        return novel

    def keys(self) -> List[str]:
        """The reached signature keys, sorted (deterministic order)."""
        return sorted(self._counts)

    def hits(self, key: str) -> int:
        """How many runs landed in ``key`` (0 when unreached)."""
        return self._counts.get(key, 0)

    def to_jsonable(self) -> Dict[str, int]:
        """The plain-JSON form (sorted on dump by the corpus writer)."""
        return dict(self._counts)

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, int] | None) -> "TraceFeatureMap":
        """Rebuild a map from :meth:`to_jsonable` output."""
        return cls({str(k): int(v) for k, v in (payload or {}).items()})


__all__ = [
    "SMALL_COUNT_CAP",
    "Signature",
    "TraceFeatureMap",
    "bucket",
    "signature",
    "signature_key",
]
