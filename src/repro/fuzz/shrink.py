"""Shrinking a violating genome back toward the baseline.

Two-stage reduction, both stages sharing one oracle budget:

1. **Fault-plan ddmin** -- the fault-plan axis is delegated to
   :func:`repro.faults.shrink.shrink_plan` (the chaos campaigns' delta
   debugger), after first trying the empty plan outright, so the
   timeline inside the genome is 1-minimal at the fault-group level.
2. **Per-axis reduction** -- every other axis is repeatedly offered its
   :data:`~repro.fuzz.genome.BASELINE_GENOME` value in a fixed order;
   a reduction is kept only when the oracle still violates, and the
   loop runs to fixpoint.  The ``backend -> shared`` reduction is the
   big step (it erases every emulated-only axis at once), so it is
   offered only once the emulated axes are already at baseline --
   otherwise a single lucky oracle run could hide which axis carried
   the violation.

The result is 1-minimal in genome mutation steps: restoring any single
reduced axis (or removing any remaining fault group) makes the
violation disappear, so the pinned repro's
:meth:`~repro.fuzz.genome.ScenarioGenome.complexity` is the smallest
the oracle supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.faults.plan import FaultPlan
from repro.faults.shrink import shrink_plan
from repro.fuzz.genome import BASELINE_GENOME, ScenarioGenome

#: Reduction order: cheap single-axis resets first, the backend
#: collapse last.  ``resync`` and ``transition`` (the two deliberately
#: broken emulation modes) reduce first so a genuinely broken mode is
#: never masked by axis noise.
AXIS_ORDER = (
    "resync",
    "transition",
    "crash",
    "delay",
    "consistency",
    "membership_plan",
    "links",
    "algorithm",
    "n",
    "replicas",
    "backend",
)


@dataclass
class GenomeShrinkResult:
    """Outcome of one :func:`shrink_genome` reduction."""

    #: The minimal violating genome.
    genome: ScenarioGenome
    #: Oracle invocations spent (fault ddmin + axis passes).
    oracle_runs: int = 0
    #: Accepted reductions, in order (diagnostics).
    steps: List[str] = field(default_factory=list)


def _reduced(genome: ScenarioGenome, axis: str) -> Optional[ScenarioGenome]:
    """``genome`` with ``axis`` at its baseline value; ``None`` when the
    axis is already there or the reduction is not a legal genome."""
    baseline = BASELINE_GENOME
    if axis == "backend":
        if genome.backend == "shared":
            return None
        # Only collapse once every emulated-only axis is baseline, so
        # the collapse is a true single step.
        if (
            genome.fault_plan != ()
            or genome.membership_plan != ()
            or genome.transition != "dual-quorum"
            or genome.links != "sync"
            or genome.consistency != "regular"
            or genome.replicas != 3
            or not genome.resync
        ):
            return None
        return ScenarioGenome(
            algorithm=genome.algorithm,
            backend="shared",
            n=genome.n,
            delay=genome.delay,
            crash=genome.crash,
        )
    current = getattr(genome, axis)
    target = getattr(baseline, axis)
    if current == target:
        return None
    try:
        return replace(genome, **{axis: target})
    except ValueError:
        # e.g. replicas -> 3 under a plan that faults replica index 4.
        return None


def shrink_genome(
    genome: ScenarioGenome,
    is_violating: Callable[[ScenarioGenome], bool],
    *,
    max_oracle_runs: int = 120,
) -> GenomeShrinkResult:
    """Reduce a violating ``genome`` to a mutation-minimal repro.

    ``genome`` is assumed violating and not re-checked.  Within the
    oracle budget the result is guaranteed violating; the budget is a
    safety valve for pathological oracles, not a practical limit.
    """
    result = GenomeShrinkResult(genome=genome)

    def check(candidate: ScenarioGenome) -> bool:
        result.oracle_runs += 1
        return is_violating(candidate)

    # Stage 1: the fault-plan axis, via the chaos delta debugger.
    current = result.genome
    if current.fault_plan:
        empty = current.with_plan(FaultPlan(()))
        if result.oracle_runs < max_oracle_runs and check(empty):
            current = empty
            result.steps.append("faults->()")
        else:
            shrunk = shrink_plan(
                FaultPlan(current.fault_plan),
                lambda plan: check(current.with_plan(plan)),
                max_oracle_runs=max(1, max_oracle_runs - result.oracle_runs),
            )
            if len(shrunk.plan) < len(FaultPlan(current.fault_plan)):
                result.steps.append(
                    f"faults:{len(FaultPlan(current.fault_plan))}->{len(shrunk.plan)}"
                )
            current = current.with_plan(shrunk.plan)

    # Stage 2: per-axis baseline reduction to fixpoint.
    changed = True
    while changed and result.oracle_runs < max_oracle_runs:
        changed = False
        for axis in AXIS_ORDER:
            if result.oracle_runs >= max_oracle_runs:
                break
            candidate = _reduced(current, axis)
            if candidate is None:
                continue
            if check(candidate):
                result.steps.append(f"{axis}->{getattr(candidate, axis)}")
                current = candidate
                changed = True

    result.genome = current
    return result


__all__ = ["AXIS_ORDER", "GenomeShrinkResult", "shrink_genome"]
