"""The persisted fuzz corpus: genomes, coverage, pinned regressions.

Directory layout (all files plain sorted-key JSON)::

    <corpus>/
      coverage.json            # TraceFeatureMap + the base horizon
      genomes/<key>.json       # one ScenarioGenome per novel signature
      regressions/<key>.json   # pinned repro payloads of shrunk violations

A :class:`Corpus` without a root directory is purely in-memory (the
test and smoke mode); with one, every addition is written through
immediately, so a killed nightly run keeps everything it found.  File
names are genome content digests (:meth:`ScenarioGenome.key`), which
makes persistence idempotent -- re-adding a genome rewrites the same
bytes -- and keeps directory listings deterministic.

Regression payloads are engine-ready pinned repros, exactly the
``repro chaos`` shape: ``{"factory": "fuzz-cell", "kwargs": ...,
"algorithm": ..., "seed": ..., "genome": ...}`` -- replayable through
:func:`repro.workloads.registry.build_scenario` (and ``repro fuzz
--replay``) long after the genome code has moved on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.coverage import TraceFeatureMap
from repro.fuzz.genome import ScenarioGenome

#: Coverage-file schema version.
COVERAGE_FORMAT = 1


def _dump(path: Path, payload: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class Corpus:
    """Genomes that reached novel coverage, plus their pinned failures."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = root
        self.genomes: Dict[str, ScenarioGenome] = {}
        self.coverage = TraceFeatureMap()
        #: Pinned repro payloads by genome key (the *shrunk* genome's).
        self.regressions: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: Optional[Path]) -> "Corpus":
        """Load a corpus directory (missing/empty -> a fresh corpus)."""
        corpus = cls(root)
        if root is None or not root.is_dir():
            return corpus
        coverage_path = root / "coverage.json"
        if coverage_path.is_file():
            payload = json.loads(coverage_path.read_text())
            corpus.coverage = TraceFeatureMap.from_jsonable(payload.get("signatures"))
        for path in sorted((root / "genomes").glob("*.json")):
            genome = ScenarioGenome.from_jsonable(json.loads(path.read_text()))
            corpus.genomes[genome.key()] = genome
        for path in sorted((root / "regressions").glob("*.json")):
            corpus.regressions[path.stem] = json.loads(path.read_text())
        return corpus

    # ------------------------------------------------------------------
    def members(self) -> List[ScenarioGenome]:
        """Corpus genomes in deterministic (key-sorted) order."""
        return [self.genomes[key] for key in sorted(self.genomes)]

    def add_genome(self, genome: ScenarioGenome) -> None:
        """Admit a genome (idempotent; written through when persisted)."""
        key = genome.key()
        self.genomes[key] = genome
        if self.root is not None:
            _dump(self.root / "genomes" / f"{key}.json", genome.to_jsonable())

    def add_regression(self, genome: ScenarioGenome, payload: Dict[str, Any]) -> None:
        """Pin a shrunk violating genome's repro payload."""
        key = genome.key()
        self.regressions[key] = payload
        if self.root is not None:
            _dump(self.root / "regressions" / f"{key}.json", payload)

    def save_coverage(self, base_horizon: float) -> None:
        """Write the coverage map (the base horizon documents how the
        stored genomes' derived horizons were computed)."""
        if self.root is None:
            return
        _dump(
            self.root / "coverage.json",
            {
                "format": COVERAGE_FORMAT,
                "base_horizon": base_horizon,
                "signatures": self.coverage.to_jsonable(),
            },
        )

    def regression_items(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Pinned repros in deterministic (key-sorted) order."""
        return [(key, self.regressions[key]) for key in sorted(self.regressions)]


__all__ = ["COVERAGE_FORMAT", "Corpus"]
