"""Coverage-guided scenario fuzzing (the ``repro fuzz`` subsystem).

The fuzzer composes the repo's full scenario space -- algorithm,
backend, membership, delay model, crash plan, link model, consistency
level, fault timeline -- into typed
:class:`~repro.fuzz.genome.ScenarioGenome` values, mutates them one
axis at a time, and keeps an AFL-style corpus of genomes whose runs
reached novel :mod:`~repro.fuzz.coverage` signatures.  Violations of
the theorem monitors, the consistency history audit or the write-ack
integrity check are shrunk to mutation-minimal pinned repros that
replay through the scenario registry.

:mod:`repro.fuzz.loop` imports the workloads/engine stack and is
imported explicitly (by the CLI and tests), mirroring
:mod:`repro.faults.campaign`.
"""

from repro.fuzz.corpus import Corpus
from repro.fuzz.coverage import Signature, TraceFeatureMap, bucket, signature, signature_key
from repro.fuzz.genome import (
    BASELINE_GENOME,
    DEFAULT_BASE_HORIZON,
    GENOME_ALGORITHMS,
    GENOME_BACKENDS,
    GENOME_CONSISTENCY,
    GENOME_CRASHES,
    GENOME_DELAYS,
    GENOME_LINKS,
    GENOME_NS,
    GENOME_REPLICAS,
    ScenarioGenome,
)
from repro.fuzz.mutate import mutate, random_genome
from repro.fuzz.shrink import AXIS_ORDER, GenomeShrinkResult, shrink_genome

__all__ = [
    "AXIS_ORDER",
    "BASELINE_GENOME",
    "Corpus",
    "DEFAULT_BASE_HORIZON",
    "GENOME_ALGORITHMS",
    "GENOME_BACKENDS",
    "GENOME_CONSISTENCY",
    "GENOME_CRASHES",
    "GENOME_DELAYS",
    "GENOME_LINKS",
    "GENOME_NS",
    "GENOME_REPLICAS",
    "GenomeShrinkResult",
    "ScenarioGenome",
    "Signature",
    "TraceFeatureMap",
    "bucket",
    "mutate",
    "random_genome",
    "shrink_genome",
    "signature",
    "signature_key",
]
