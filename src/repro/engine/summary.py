"""Compact, picklable run summaries.

Worker processes must not ship a full
:class:`~repro.core.runner.RunResult` back to the driver: it drags the
simulator, the shared memory (with its access logs) and every algorithm
instance across the pickle boundary.  Instead each cell is condensed
*in the worker* into a :class:`RunSummary` -- the
:class:`~repro.workloads.sweep.SweepRow` fields plus timing/event
counts and the small register censuses the ablation benches need.

Summaries are value objects: two runs of the same (algorithm, scenario,
seed) produce equal summaries whether they executed serially or in a
worker, with or without the low-overhead run mode (``wall_time_s`` is
excluded from comparisons).  :meth:`RunSummary.to_jsonable` /
:meth:`RunSummary.from_jsonable` round-trip losslessly through the
JSONL result store.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.analysis.omega_props import check_termination, check_validity
from repro.analysis.write_stats import (
    forever_writers,
    growing_registers,
    single_writer_point,
)
from repro.core.runner import RunResult
from repro.props.report import PropertyReport, check_properties
from repro.workloads.sweep import SweepRow

#: Register-name prefix of the suspicion counters shared by Algorithm 1
#: and its variants; algorithms without such registers report ``None`` /
#: zero in the suspicion census fields.
SUSPICION_PREFIX = "SUSPICIONS"

#: Fraction of the horizon counted as the "late" tail for
#: :attr:`RunSummary.suspicion_writes_tail` (the timeout-policy ablation
#: asks "is it still suspecting near the end?").
TAIL_FRACTION = 0.8


@dataclass
class RunSummary(SweepRow):
    """One cell outcome: a :class:`SweepRow` plus engine metadata."""

    #: Host-clock seconds spent executing + summarizing the cell.
    #: Excluded from equality: it is measurement noise, not outcome.
    wall_time_s: float = field(default=0.0, compare=False)
    #: Discrete events fired by the simulator (deterministic per seed).
    events_fired: int = 0
    #: Whether the stabilized-upon leader is a correct process.
    leader_correct: bool = False
    #: Largest current value among ``SUSPICIONS*`` registers (None when
    #: the algorithm has no such registers).
    max_suspicion: Optional[float] = None
    #: Writes to ``SUSPICIONS*`` registers over the whole run.
    suspicion_writes_total: int = 0
    #: ... and in the late tail ``[TAIL_FRACTION * horizon, end]``.
    suspicion_writes_tail: int = 0
    #: Count of expected-but-failed theorem verdicts (0 = clean audit).
    property_violations: int = 0
    #: The full Theorem 1-4 claimed-vs-measured report.
    properties: Optional[PropertyReport] = None
    #: Memory backend the run used ("shared" or "emulated").
    memory_backend: str = "shared"
    #: Protocol messages sent by the register emulation (0 when shared).
    messages_sent: int = 0
    #: Consistency level of the run's registers: the emulation's
    #: configured level ("regular" or "atomic"); "atomic" for the
    #: shared backend, whose instantaneous registers are atomic by
    #: construction.
    consistency: str = "atomic"
    #: Consistency-audit verdict of the recorded emulated history,
    #: checked at the run's own level (atomic histories against full
    #: linearizability, regular ones against regularity); ``None`` when
    #: nothing was recorded (shared backend, or ``record_history`` off).
    audit_ok: Optional[bool] = None
    #: Operations the consistency audit covered (0 when not recorded).
    audit_ops: int = 0
    #: Violations the consistency audit found (0 when clean or not
    #: recorded; `repro check` counts these alongside the theorem
    #: violations).
    audit_violations: int = 0
    #: Resilience counters of the emulated backend (all 0 for shared
    #: memory): retransmission rounds fired by pending quorum phases,
    #: transient replica recoveries applied from the fault plan, quorum
    #: state-resyncs completed by recovering replicas, and write-ack
    #: value-integrity violations caught by the quorum-certificate
    #: cross-check.
    retransmissions: int = 0
    recoveries: int = 0
    resyncs: int = 0
    integrity_violations: int = 0
    #: Leader-output changes across all pids over the run (the churn
    #: census the fuzz coverage signatures bucket): how many times any
    #: process's leader sample differed from its previous one.
    leader_changes: int = 0
    #: ABD write-back phases completed by atomic-level reads (0 for
    #: shared memory or regular reads) -- the quorum-race census.
    write_backs: int = 0
    #: Reconfiguration counters of the emulated backend's dynamic
    #: membership (all 0 for shared memory or a churn-free plan):
    #: replica configs installed, operations completed inside a
    #: dual-quorum transition window, and membership state-transfer
    #: rounds completed.
    configs_installed: int = 0
    dual_quorum_ops: int = 0
    transfer_rounds: int = 0

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """A plain-JSON dict (frozensets become sorted lists)."""
        out = dataclasses.asdict(self)
        out["forever_writers"] = sorted(self.forever_writers)
        if self.properties is not None:
            out["properties"] = self.properties.to_jsonable()
        return out

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "RunSummary":
        """Rebuild a summary from :meth:`to_jsonable` output (unknown
        keys are ignored, so old cache rows load under newer fields)."""
        data = dict(payload)
        data["forever_writers"] = frozenset(data.get("forever_writers", ()))
        if isinstance(data.get("properties"), Mapping):
            data["properties"] = PropertyReport.from_jsonable(data["properties"])
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def canonical_json(self) -> str:
        """Deterministic serialization of the *outcome* fields.

        Drops every ``compare=False`` field, so two equal summaries have
        byte-identical canonical JSON -- the determinism tests compare
        exactly this.
        """
        payload = self.to_jsonable()
        for f in dataclasses.fields(self):
            if not f.compare:
                payload.pop(f.name, None)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
def _suspicion_census(result: RunResult) -> tuple[Optional[float], int, int]:
    """(max current value, total writes, tail writes) of SUSPICIONS*."""
    cutoff = TAIL_FRACTION * result.horizon
    total = tail = 0
    for rec in result.memory.write_log:
        if rec.register.startswith(SUSPICION_PREFIX):
            total += 1
            if rec.time >= cutoff:
                tail += 1
    best: Optional[float] = None
    for reg in result.memory.all_registers():
        if not reg.name.startswith(SUSPICION_PREFIX):
            continue
        value = reg.peek()
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            v = float(value)
            best = v if best is None or v > best else best
    return best, total, tail


def _leader_churn(result: RunResult) -> int:
    """Count leader-output changes across all pids in the sample trace."""
    last: dict = {}
    changes = 0
    for _, pid, leader in result.trace.leader_samples():
        if pid in last and last[pid] != leader:
            changes += 1
        last[pid] = leader
    return changes


def summarize_run(
    result: RunResult,
    *,
    scenario_name: str = "",
    margin: float = 0.0,
    window: float = 100.0,
    wall_time_s: float = 0.0,
    assumption: str = "awb",
) -> RunSummary:
    """Condense a finished run into a :class:`RunSummary`.

    Only consumes the write log, the aggregate access counters and the
    leader-sample trace, so it works identically in the low-overhead run
    mode (``log_reads=False``, ``trace_events=False``).  ``assumption``
    is the scenario's declared environment class; it decides which
    theorem verdicts of the embedded :class:`PropertyReport` count as
    violations.
    """
    report = result.stabilization(margin=margin)
    writers = forever_writers(result.memory, result.horizon, window=window)
    swp = single_writer_point(result.memory, result.horizon, tail=window)
    term = check_termination(result.algorithms, result.crash_plan)
    max_susp, susp_total, susp_tail = _suspicion_census(result)
    props = check_properties(
        result, assumption=assumption, margin=margin, window=window
    )
    # Consistency level + history audit: the emulated backend carries
    # its configured level; shared registers are atomic by construction.
    emu_config = getattr(result.memory, "config", None)
    consistency = getattr(emu_config, "consistency", "atomic")
    audit = result.audit_consistency()
    return RunSummary(
        algorithm=result.algorithm_name,
        scenario=scenario_name,
        seed=result.seed,
        n=result.n,
        horizon=result.horizon,
        stabilized=report.stabilized,
        stabilization_time=report.time,
        leader=report.leader,
        valid=check_validity(result.trace, result.n),
        termination_ok=term.ok,
        forever_writer_count=len(writers),
        forever_writers=writers,
        growing_register_count=len(growing_registers(result.memory, result.horizon)),
        single_writer=swp.reached,
        total_writes=result.memory.total_writes,
        total_reads=result.memory.total_reads,
        wall_time_s=wall_time_s,
        events_fired=result.sim.events_fired,
        leader_correct=report.leader_correct,
        max_suspicion=max_susp,
        suspicion_writes_total=susp_total,
        suspicion_writes_tail=susp_tail,
        property_violations=len(props.violations()),
        properties=props,
        memory_backend=getattr(result, "memory_backend", "shared"),
        messages_sent=getattr(getattr(result.memory, "network", None), "total_sent", 0),
        consistency=consistency,
        audit_ok=None if audit is None else audit.ok,
        audit_ops=0 if audit is None else audit.ops_checked,
        audit_violations=0 if audit is None else len(audit.violations),
        retransmissions=getattr(result.memory, "retransmissions", 0),
        recoveries=getattr(result.memory, "recoveries", 0),
        resyncs=getattr(result.memory, "resyncs", 0),
        integrity_violations=getattr(result.memory, "integrity_violations", 0),
        leader_changes=_leader_churn(result),
        write_backs=getattr(result.memory, "write_backs", 0),
        configs_installed=getattr(result.memory, "configs_installed", 0),
        dual_quorum_ops=getattr(result.memory, "dual_quorum_ops", 0),
        transfer_rounds=getattr(result.memory, "transfer_rounds", 0),
    )


__all__ = ["RunSummary", "SUSPICION_PREFIX", "TAIL_FRACTION", "summarize_run"]
