"""JSONL result store: re-running a bench is a cache hit.

Each :class:`~repro.engine.spec.ExperimentSpec` maps to one append-only
JSONL file under ``results/engine/`` named
``<spec-name>-<content-hash>.jsonl``.  The first line records the spec
payload (for humans and for format checks); every following line is one
successfully summarized cell::

    {"spec": {...}, "format": 1}
    {"key": ["alg1", "nominal({...})", 0], "summary": {...}}

Because the file is keyed by the spec's *content hash*, any change to
the grid -- different seeds, horizons, window, algorithm set -- lands in
a different file; a re-run of the same spec finds every cell already
present and executes nothing.  Partial files (from an interrupted sweep)
are fine: the driver only executes the missing cells and appends them.

The cache deliberately does not try to detect *code* changes; delete
``results/engine/`` or pass ``cache=False`` after modifying algorithm or
scenario logic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Tuple

from repro.engine.spec import SPEC_FORMAT, ExperimentSpec
from repro.engine.summary import RunSummary
from repro.engine.worker import CellOutcome

#: Default location, relative to the current working directory (the
#: repo root in every documented invocation).
DEFAULT_RESULTS_DIR = Path("results") / "engine"

CellKey = Tuple[str, str, int]


class ResultStore:
    """Reads and appends per-spec JSONL result files."""

    def __init__(self, root: Path | str = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, spec: ExperimentSpec) -> Path:
        safe_name = "".join(c if c.isalnum() or c in "-_." else "-" for c in spec.name)
        return self.root / f"{safe_name}-{spec.content_hash()}.jsonl"

    # ------------------------------------------------------------------
    def load(self, spec: ExperimentSpec) -> Dict[CellKey, RunSummary]:
        """All cached summaries for ``spec``, keyed by cell key.

        Lookup is by *content hash*: if the exact ``<name>-<hash>`` file
        is absent (the experiment was renamed), any ``*-<hash>.jsonl``
        file with the same grid content serves the cells, so renaming
        never orphans a cache.  Malformed lines and format mismatches
        are skipped (the affected cells simply re-run), so a truncated
        file from a killed sweep never wedges the engine.
        """
        path = self.path_for(spec)
        if path.exists():
            candidates = [path]
        else:
            candidates = sorted(self.root.glob(f"*-{spec.content_hash()}.jsonl"))
        out: Dict[CellKey, RunSummary] = {}
        for candidate in candidates:
            out.update(self._load_file(candidate))
        return out

    @staticmethod
    def _load_file(path: Path) -> Dict[CellKey, RunSummary]:
        out: Dict[CellKey, RunSummary] = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "spec" in payload:
                if payload.get("format") != SPEC_FORMAT:
                    return {}
                continue
            key = payload.get("key")
            summary = payload.get("summary")
            if not isinstance(key, list) or len(key) != 3 or summary is None:
                continue
            try:
                out[(key[0], key[1], int(key[2]))] = RunSummary.from_jsonable(summary)
            except (KeyError, TypeError, ValueError):
                continue
        return out

    # ------------------------------------------------------------------
    def append(self, spec: ExperimentSpec, outcomes: Iterable[CellOutcome]) -> Path:
        """Append successful outcomes; creates the file (with its spec
        header) on first write.  Failed cells are not cached, so they
        re-run on the next invocation."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        if not path.exists():
            header = {"spec": spec.to_payload(), "format": SPEC_FORMAT}
            lines.append(json.dumps(header, sort_keys=True))
        for outcome in outcomes:
            if outcome.summary is None:
                continue
            lines.append(
                json.dumps(
                    {"key": list(outcome.key), "summary": outcome.summary.to_jsonable()},
                    sort_keys=True,
                )
            )
        if lines:
            with path.open("a", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
        return path


__all__ = ["DEFAULT_RESULTS_DIR", "ResultStore"]
