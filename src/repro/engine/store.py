"""JSONL result store: re-running a bench is a cache hit.

Each :class:`~repro.engine.spec.ExperimentSpec` maps to one append-only
JSONL file under ``results/engine/`` named
``<spec-name>-<content-hash>.jsonl``.  The first line records the spec
payload (for humans and for format checks); every following line is one
successfully summarized cell::

    {"spec": {...}, "format": 1}
    {"key": ["alg1", "nominal({...})", 0], "summary": {...}}

Because the file is keyed by the spec's *content hash*, any change to
the grid -- different seeds, horizons, window, algorithm set -- lands in
a different file; a re-run of the same spec finds every cell already
present and executes nothing.  Partial files (from an interrupted sweep)
are fine: the driver only executes the missing cells and appends them.

The cache deliberately does not try to detect *code* changes; delete
``results/engine/`` or pass ``cache=False`` after modifying algorithm or
scenario logic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Tuple

from repro.engine.spec import SPEC_FORMAT, ExperimentSpec
from repro.paths import repo_root
from repro.engine.summary import RunSummary
from repro.engine.worker import CellOutcome

#: Environment variable overriding the cache root.
ENV_RESULTS_DIR = "REPRO_RESULTS_DIR"


def _anchored_default() -> Path:
    """The repo-anchored cache root.

    Anchored at the checkout root (:func:`repro.paths.repo_root`) so
    ``repro sweep`` invoked from any working directory hits the same
    cache.  For an installed package (no project root above the module)
    the historical CWD-relative default applies.
    """
    root = repo_root()
    if root is not None:
        return root / "results" / "engine"
    return Path("results") / "engine"


def default_results_dir() -> Path:
    """Resolve the cache root: ``REPRO_RESULTS_DIR`` env override first,
    else the repo-anchored default (see :func:`_anchored_default`)."""
    env = os.environ.get(ENV_RESULTS_DIR)
    if env:
        return Path(env).expanduser()
    return _anchored_default()


#: Default location at import time (without the env override applied;
#: callers that should honor ``REPRO_RESULTS_DIR`` per invocation use
#: :func:`default_results_dir` instead).
DEFAULT_RESULTS_DIR = _anchored_default()

CellKey = Tuple[str, str, int]


def _write_all(fd: int, data: bytes) -> None:
    """Write every byte of ``data`` to ``fd``.

    A single ``os.write`` is the common case (and, with ``O_APPEND``,
    lands atomically); the loop only continues after a short write
    (signal, near-full disk), which would otherwise silently truncate
    the batch to a torn JSON line.
    """
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class ResultStore:
    """Reads and appends per-spec JSONL result files.

    ``root=None`` resolves the default at call time (env override,
    then the repo-anchored directory).
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_results_dir()

    def path_for(self, spec: ExperimentSpec) -> Path:
        """The spec's JSONL file: sanitized name + content hash."""
        safe_name = "".join(c if c.isalnum() or c in "-_." else "-" for c in spec.name)
        return self.root / f"{safe_name}-{spec.content_hash()}.jsonl"

    # ------------------------------------------------------------------
    def load(self, spec: ExperimentSpec) -> Dict[CellKey, RunSummary]:
        """All cached summaries for ``spec``, keyed by cell key.

        Lookup is by *content hash*: if the exact ``<name>-<hash>`` file
        is absent (the experiment was renamed), any ``*-<hash>.jsonl``
        file with the same grid content serves the cells, so renaming
        never orphans a cache.  Malformed lines and format mismatches
        are skipped (the affected cells simply re-run), so a truncated
        file from a killed sweep never wedges the engine.
        """
        path = self.path_for(spec)
        if path.exists():
            candidates = [path]
        else:
            candidates = sorted(self.root.glob(f"*-{spec.content_hash()}.jsonl"))
        out: Dict[CellKey, RunSummary] = {}
        for candidate in candidates:
            out.update(self._load_file(candidate))
        return out

    @staticmethod
    def _load_file(path: Path) -> Dict[CellKey, RunSummary]:
        out: Dict[CellKey, RunSummary] = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "spec" in payload:
                if payload.get("format") != SPEC_FORMAT:
                    return {}
                continue
            key = payload.get("key")
            summary = payload.get("summary")
            if not isinstance(key, list) or len(key) != 3 or summary is None:
                continue
            try:
                out[(key[0], key[1], int(key[2]))] = RunSummary.from_jsonable(summary)
            except (KeyError, TypeError, ValueError):
                continue
        return out

    # ------------------------------------------------------------------
    def append(self, spec: ExperimentSpec, outcomes: Iterable[CellOutcome]) -> Path:
        """Append successful outcomes; creates the file (with its spec
        header) on first write.  Failed cells are not cached, so they
        re-run on the next invocation.

        Safe under concurrent sweeps of the same spec: the header is
        written with exclusive create (exactly one process wins the
        race; ``path.exists()`` checks would let both write it), and
        the body goes out as one ``O_APPEND`` write, so lines from two
        appenders never interleave mid-record.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(
                {"key": list(outcome.key), "summary": outcome.summary.to_jsonable()},
                sort_keys=True,
            )
            for outcome in outcomes
            if outcome.summary is not None
        ]
        # Exclusive create decides who owns the header; the winner emits
        # header + batch in one append-mode write, the loser just appends
        # its batch.  Every byte goes out through O_APPEND, so a loser
        # appending between the winner's create and its first write can
        # never be overwritten (a positional header write at offset 0
        # could tear the loser's first record).
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL | os.O_APPEND, 0o644)
            header = {"spec": spec.to_payload(), "format": SPEC_FORMAT}
            lines.insert(0, json.dumps(header, sort_keys=True))
        except FileExistsError:
            fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        try:
            if lines:
                _write_all(fd, ("\n".join(lines) + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return path


__all__ = ["DEFAULT_RESULTS_DIR", "ENV_RESULTS_DIR", "ResultStore", "default_results_dir"]
