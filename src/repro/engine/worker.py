"""The per-cell worker entry point.

:func:`execute_cell` is the function the parallel driver submits to its
process pool: it receives one picklable :class:`repro.engine.spec.Cell`,
rebuilds the scenario and algorithm from their references, executes the
run in the low-overhead mode and returns a compact
:class:`~repro.engine.summary.RunSummary` -- never a full
:class:`~repro.core.runner.RunResult`.

It is deliberately a plain top-level function of one picklable argument
so it works under every multiprocessing start method, and it never
raises: failures come back as a :class:`CellOutcome` carrying the full
traceback, so one poisoned cell cannot take down a 10k-cell sweep.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.spec import Cell
from repro.engine.summary import RunSummary, summarize_run


@dataclass(frozen=True)
class CellOutcome:
    """What one worker invocation produced: a summary or a traceback."""

    key: Tuple[str, str, int]
    summary: Optional[RunSummary] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a summary."""
        return self.error is None


def run_cell(
    cell: Cell,
    window: float = 100.0,
    fast: bool = True,
    memory: Optional[str] = None,
    consistency: Optional[str] = None,
    membership: Optional[str] = None,
) -> RunSummary:
    """Execute one cell in-process and return its summary (raises on error).

    ``memory`` is the spec-level backend override: ``None`` (the
    default) leaves the scenario's own backend choice in force, a
    backend name forces that backend onto the cell (the
    ``repro sweep --memory emulated`` path -- and ``"shared"`` forces
    the shared backend even onto emulated-native scenarios).
    ``consistency`` is the spec-level consistency-level override for
    emulated cells (``repro sweep --consistency``); cells that end up
    on the shared backend drop it (their registers are atomic by
    construction).  ``membership`` is the spec-level dynamic-membership
    override for emulated cells (``repro sweep --membership``), dropped
    the same way on shared-backend cells.
    """
    from repro.workloads.registry import build_scenario, resolve_algorithm

    started = time.perf_counter()
    algorithm_cls = resolve_algorithm(cell.algorithm.target)
    scenario = build_scenario(cell.scenario.factory, cell.scenario.kwargs_dict())
    overrides: dict = {"log_reads": False, "trace_events": False} if fast else {}
    if memory is not None:
        overrides["memory"] = memory
    if consistency is not None and (memory or scenario.memory) == "emulated":
        overrides["consistency"] = consistency
    if membership is not None and (memory or scenario.memory) == "emulated":
        overrides["membership"] = membership
    result = scenario.run(algorithm_cls, seed=cell.seed, **overrides)
    summary = summarize_run(
        result,
        scenario_name=scenario.name,
        margin=scenario.margin,
        window=window,
        wall_time_s=0.0,
        assumption=scenario.assumption,
    )
    summary.algorithm = cell.algorithm.label  # prefer the caller's label
    summary.wall_time_s = time.perf_counter() - started
    return summary


def execute_cell(
    cell: Cell,
    window: float = 100.0,
    fast: bool = True,
    memory: Optional[str] = None,
    consistency: Optional[str] = None,
    membership: Optional[str] = None,
) -> CellOutcome:
    """Pool-safe wrapper around :func:`run_cell`: captures errors."""
    try:
        return CellOutcome(
            key=cell.key,
            summary=run_cell(
                cell,
                window=window,
                fast=fast,
                memory=memory,
                consistency=consistency,
                membership=membership,
            ),
        )
    except Exception:  # noqa: BLE001 - the driver re-raises in strict mode
        return CellOutcome(key=cell.key, error=traceback.format_exc())


__all__ = ["CellOutcome", "execute_cell", "run_cell"]
