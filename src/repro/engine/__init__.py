"""The parallel experiment engine.

Declarative, cache-aware, multi-process execution of
(algorithm x scenario x seed) grids:

>>> from repro.engine import ExperimentSpec, run_experiment
>>> from repro.workloads.scenarios import nominal
>>> from repro.workloads.registry import ALGORITHMS
>>> spec = ExperimentSpec.from_objects(
...     "demo", {"alg1": ALGORITHMS["alg1"]}, [nominal(n=3, horizon=1500.0)], [0, 1]
... )
>>> report = run_experiment(spec, jobs=2, cache=False)
>>> [row.stabilized for row in report.rows]
[True, True]

Layers: :mod:`~repro.engine.spec` (content-hashed grid descriptions),
:mod:`~repro.engine.summary` (compact picklable row per run),
:mod:`~repro.engine.worker` (one-cell entry point for pool processes),
:mod:`~repro.engine.store` (JSONL cache under ``results/engine/``),
:mod:`~repro.engine.driver` (the pool driver and report).
"""

from repro.engine.driver import EngineError, EngineReport, default_jobs, run_experiment
from repro.engine.spec import AlgorithmRef, Cell, ExperimentSpec, ScenarioRef
from repro.engine.store import ENV_RESULTS_DIR, ResultStore, default_results_dir
from repro.engine.summary import RunSummary, summarize_run
from repro.engine.worker import CellOutcome, execute_cell, run_cell

__all__ = [
    "AlgorithmRef",
    "Cell",
    "CellOutcome",
    "ENV_RESULTS_DIR",
    "EngineError",
    "EngineReport",
    "ExperimentSpec",
    "ResultStore",
    "default_results_dir",
    "RunSummary",
    "ScenarioRef",
    "default_jobs",
    "execute_cell",
    "run_cell",
    "run_experiment",
    "summarize_run",
]
