"""The parallel, cache-aware experiment driver.

:func:`run_experiment` takes an
:class:`~repro.engine.spec.ExperimentSpec` and produces one
:class:`~repro.engine.summary.RunSummary` per grid cell:

1. load the spec's JSONL cache (``results/engine/``) and keep every
   cell already summarized there;
2. execute the missing cells -- in-process when ``jobs <= 1``, through a
   :class:`~concurrent.futures.ProcessPoolExecutor` otherwise (every
   run is a pure function of its configuration and seed, so the grid is
   embarrassingly parallel);
3. append the new summaries to the cache and return the rows in the
   spec's deterministic scenario-major order, regardless of which
   worker finished first.

Per-cell failures are captured as tracebacks, not exceptions: in strict
mode (the default) the driver raises :class:`EngineError` *after* all
cells have been attempted and the good ones cached, so a 10k-cell sweep
never loses finished work to one poisoned cell.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine.spec import Cell, ExperimentSpec
from repro.engine.store import ResultStore
from repro.engine.summary import RunSummary
from repro.engine.worker import CellOutcome, execute_cell


def _error_head(error: Optional[str]) -> str:
    """Last non-empty traceback line, or ``"?"``.

    ``error`` may be truthy yet contain only whitespace (e.g. a worker
    that died mid-write); indexing ``splitlines()[-1]`` on it would
    raise IndexError inside the exception constructor.
    """
    lines = (error or "").strip().splitlines()
    return lines[-1] if lines else "?"


class EngineError(RuntimeError):
    """One or more cells failed; carries their captured tracebacks."""

    def __init__(self, failures: List[CellOutcome]) -> None:
        self.failures = failures
        heads = "\n".join(
            f"  {f.key}: {_error_head(f.error)}" for f in failures[:5]
        )
        more = "" if len(failures) <= 5 else f"\n  ... and {len(failures) - 5} more"
        super().__init__(f"{len(failures)} cell(s) failed:\n{heads}{more}")


@dataclass
class EngineReport:
    """Everything one :func:`run_experiment` invocation produced."""

    spec: ExperimentSpec
    #: One row per cell, in the spec's deterministic grid order.
    rows: List[RunSummary]
    #: Failed cells (empty in strict mode, which raises instead).
    failures: List[CellOutcome] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_time_s: float = 0.0
    store_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        """True when every cell produced a summary."""
        return not self.failures


def default_jobs() -> int:
    """Worker count when the caller does not choose: ``REPRO_JOBS`` env
    override, else one worker per CPU."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
def _execute_serial(cells: List[Cell], spec: ExperimentSpec) -> List[CellOutcome]:
    return [
        execute_cell(
            cell,
            window=spec.window,
            fast=spec.fast,
            memory=spec.memory,
            consistency=spec.consistency,
        )
        for cell in cells
    ]


def _execute_parallel(cells: List[Cell], spec: ExperimentSpec, jobs: int) -> List[CellOutcome]:
    outcomes: Dict[int, CellOutcome] = {}
    orphaned: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = {
            pool.submit(
                execute_cell, cell, spec.window, spec.fast, spec.memory, spec.consistency
            ): idx
            for idx, cell in enumerate(cells)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                idx = pending.pop(future)
                exc = future.exception()
                if exc is not None:
                    # A worker died (OOM, signal): the executor marks the
                    # whole pool broken and fails every in-flight and
                    # queued future, so most of these cells were never
                    # attempted.  Collect them for an isolated retry.
                    orphaned.append(idx)
                else:
                    outcomes[idx] = future.result()
    # Retry each orphaned cell in its own single-worker pool: healthy
    # cells that were merely queued behind the crash complete normally,
    # while a genuinely poisonous cell kills only its private pool and
    # is recorded as a failure.
    for idx in orphaned:
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                outcomes[idx] = solo.submit(
                    execute_cell,
                    cells[idx],
                    spec.window,
                    spec.fast,
                    spec.memory,
                    spec.consistency,
                ).result()
        except Exception as exc:  # noqa: BLE001 - crashed again: record it
            outcomes[idx] = CellOutcome(
                key=cells[idx].key, error=f"worker failure: {exc!r}"
            )
    return [outcomes[idx] for idx in range(len(cells))]


# ----------------------------------------------------------------------
def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: Optional[int] = None,
    cache: bool = True,
    results_dir: Path | str | None = None,
    strict: bool = True,
) -> EngineReport:
    """Execute (or load) every cell of ``spec`` and return the report.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or ``<= 0`` -> :func:`default_jobs`
        (one per CPU, ``REPRO_JOBS`` overrides); ``1`` runs everything
        in-process (no pool, no pickling).
    cache:
        Serve cells from / append them to the spec's JSONL file.
    results_dir:
        Cache root; ``None`` resolves via ``REPRO_RESULTS_DIR`` or the
        repo-anchored ``results/engine`` default (see
        :func:`repro.engine.store.default_results_dir`).
    strict:
        Raise :class:`EngineError` when any cell failed (after caching
        the successful ones).  ``False`` returns the failures in the
        report and fills their rows' positions by skipping them.
    """
    started = time.perf_counter()
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    cells = spec.cells()
    store = ResultStore(results_dir)  # None -> REPRO_RESULTS_DIR / anchored default

    cached: Dict[Tuple[str, str, int], RunSummary] = store.load(spec) if cache else {}
    pending = [cell for cell in cells if cell.key not in cached]

    fresh: List[CellOutcome] = []
    if pending:
        if jobs <= 1 or len(pending) == 1:
            fresh = _execute_serial(pending, spec)
        else:
            fresh = _execute_parallel(pending, spec, min(jobs, len(pending)))
        if cache:
            store.append(spec, fresh)

    by_key: Dict[Tuple[str, str, int], RunSummary] = dict(cached)
    failures: List[CellOutcome] = []
    for outcome in fresh:
        if outcome.summary is not None:
            by_key[outcome.key] = outcome.summary
        else:
            failures.append(outcome)
    if failures and strict:
        raise EngineError(failures)

    rows = [by_key[cell.key] for cell in cells if cell.key in by_key]
    return EngineReport(
        spec=spec,
        rows=rows,
        failures=failures,
        cache_hits=len(cells) - len(pending),
        executed=len(pending),
        jobs=jobs,
        wall_time_s=time.perf_counter() - started,
        store_path=store.path_for(spec) if cache else None,
    )


__all__ = ["EngineError", "EngineReport", "default_jobs", "run_experiment"]
