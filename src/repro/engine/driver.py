"""The parallel, cache-aware experiment driver.

:func:`run_experiment` takes an
:class:`~repro.engine.spec.ExperimentSpec` and produces one
:class:`~repro.engine.summary.RunSummary` per grid cell:

1. load the spec's JSONL cache (``results/engine/``) and keep every
   cell already summarized there;
2. execute the missing cells -- in-process when ``jobs <= 1``, through a
   :class:`~concurrent.futures.ProcessPoolExecutor` otherwise (every
   run is a pure function of its configuration and seed, so the grid is
   embarrassingly parallel);
3. append each completed summary to the cache *as it finishes* and
   return the rows in the spec's deterministic scenario-major order,
   regardless of which worker finished first.

Per-cell failures are captured as tracebacks, not exceptions: in strict
mode (the default) the driver raises :class:`EngineError` *after* all
cells have been attempted and the good ones cached, so a 10k-cell sweep
never loses finished work to one poisoned cell.

**Sharding.**  Giant grids scale past one machine (or one process pool)
by splitting the deterministic cell list into ``N`` contiguous,
balanced shards:

* ``run_experiment(spec, shard=(k, n))`` executes only shard ``k`` of
  ``n`` (1-based) -- the distributed mode behind
  ``repro sweep --shard K/N``, with every shard appending to the same
  content-hashed JSONL cache (the store's exclusive-create header +
  ``O_APPEND`` writes make concurrent shard appends safe);
* ``run_experiment(spec, shards=n)`` runs all ``n`` shards in-process,
  one process pool after another -- same cell partition, one command.

Because results are flushed incrementally, a killed shard leaves every
cell it finished in the cache: re-running it (or the unsharded sweep)
skips the completed cells and recomputes nothing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.spec import Cell, ExperimentSpec
from repro.engine.store import ResultStore
from repro.engine.summary import RunSummary
from repro.engine.worker import CellOutcome, execute_cell


def _error_head(error: Optional[str]) -> str:
    """Last non-empty traceback line, or ``"?"``.

    ``error`` may be truthy yet contain only whitespace (e.g. a worker
    that died mid-write); indexing ``splitlines()[-1]`` on it would
    raise IndexError inside the exception constructor.
    """
    lines = (error or "").strip().splitlines()
    return lines[-1] if lines else "?"


class EngineError(RuntimeError):
    """One or more cells failed; carries their captured tracebacks."""

    def __init__(self, failures: List[CellOutcome]) -> None:
        self.failures = failures
        heads = "\n".join(
            f"  {f.key}: {_error_head(f.error)}" for f in failures[:5]
        )
        more = "" if len(failures) <= 5 else f"\n  ... and {len(failures) - 5} more"
        super().__init__(f"{len(failures)} cell(s) failed:\n{heads}{more}")


@dataclass
class EngineReport:
    """Everything one :func:`run_experiment` invocation produced."""

    spec: ExperimentSpec
    #: One row per cell, in the spec's deterministic grid order.
    rows: List[RunSummary]
    #: Failed cells (empty in strict mode, which raises instead).
    failures: List[CellOutcome] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_time_s: float = 0.0
    store_path: Optional[Path] = None
    #: ``(k, n)`` when this invocation ran one shard of a larger grid.
    shard: Optional[Tuple[int, int]] = None
    #: In-process shard count (1 = the classic single-pool sweep).
    shards: int = 1
    #: Size of the *full* grid (== ``len(rows)`` unless sharded).
    total_cells: int = 0

    @property
    def ok(self) -> bool:
        """True when every cell produced a summary."""
        return not self.failures


def default_jobs() -> int:
    """Worker count when the caller does not choose: ``REPRO_JOBS`` env
    override, else one worker per CPU."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
#: Called with each batch of completed outcomes (partial-run hygiene:
#: the driver flushes them to the cache immediately).
Flush = Optional[Callable[[List[CellOutcome]], None]]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``"K/N"`` shard selector into ``(k, n)`` (1-based).

    >>> parse_shard("2/4")
    (2, 4)
    """
    head, sep, tail = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(head), int(tail)
    except ValueError:
        raise ValueError(f"shard must look like 'K/N', got {text!r}") from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard {text!r} out of range (need 1 <= K <= N)")
    return index, count


def shard_bounds(total: int, index: int, count: int) -> Tuple[int, int]:
    """Slice bounds ``(start, stop)`` of shard ``index`` of ``count``.

    Shards are contiguous and balanced: sizes differ by at most one,
    with the remainder going to the lowest-numbered shards, and the
    ``count`` slices tile ``range(total)`` exactly.
    """
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard {index}/{count} out of range (need 1 <= K <= N)")
    base, extra = divmod(total, count)
    start = (index - 1) * base + min(index - 1, extra)
    return start, start + base + (1 if index <= extra else 0)


def _execute_serial(cells: List[Cell], spec: ExperimentSpec, flush: Flush = None) -> List[CellOutcome]:
    outcomes: List[CellOutcome] = []
    for cell in cells:
        outcome = execute_cell(
            cell,
            window=spec.window,
            fast=spec.fast,
            memory=spec.memory,
            consistency=spec.consistency,
            membership=spec.membership,
        )
        outcomes.append(outcome)
        if flush is not None:
            flush([outcome])
    return outcomes


def _execute_parallel(
    cells: List[Cell], spec: ExperimentSpec, jobs: int, flush: Flush = None
) -> List[CellOutcome]:
    outcomes: Dict[int, CellOutcome] = {}
    orphaned: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = {
            pool.submit(
                execute_cell,
                cell,
                spec.window,
                spec.fast,
                spec.memory,
                spec.consistency,
                spec.membership,
            ): idx
            for idx, cell in enumerate(cells)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            batch: List[CellOutcome] = []
            for future in done:
                idx = pending.pop(future)
                exc = future.exception()
                if exc is not None:
                    # A worker died (OOM, signal): the executor marks the
                    # whole pool broken and fails every in-flight and
                    # queued future, so most of these cells were never
                    # attempted.  Collect them for an isolated retry.
                    orphaned.append(idx)
                else:
                    outcomes[idx] = future.result()
                    batch.append(outcomes[idx])
            if batch and flush is not None:
                flush(batch)
    # Retry each orphaned cell in its own single-worker pool: healthy
    # cells that were merely queued behind the crash complete normally,
    # while a genuinely poisonous cell kills only its private pool and
    # is recorded as a failure.
    for idx in orphaned:
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                outcomes[idx] = solo.submit(
                    execute_cell,
                    cells[idx],
                    spec.window,
                    spec.fast,
                    spec.memory,
                    spec.consistency,
                    spec.membership,
                ).result()
        except Exception as exc:  # noqa: BLE001 - crashed again: record it
            outcomes[idx] = CellOutcome(
                key=cells[idx].key, error=f"worker failure: {exc!r}"
            )
        else:
            if flush is not None:
                flush([outcomes[idx]])
    return [outcomes[idx] for idx in range(len(cells))]


# ----------------------------------------------------------------------
def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: Optional[int] = None,
    cache: bool = True,
    results_dir: Path | str | None = None,
    strict: bool = True,
    shard: Optional[Tuple[int, int]] = None,
    shards: int = 1,
) -> EngineReport:
    """Execute (or load) every cell of ``spec`` and return the report.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or ``<= 0`` -> :func:`default_jobs`
        (one per CPU, ``REPRO_JOBS`` overrides); ``1`` runs everything
        in-process (no pool, no pickling).
    cache:
        Serve cells from / append them to the spec's JSONL file.
        Completed cells are appended *incrementally*, so an interrupted
        sweep (or a killed shard) keeps everything it finished.
    results_dir:
        Cache root; ``None`` resolves via ``REPRO_RESULTS_DIR`` or the
        repo-anchored ``results/engine`` default (see
        :func:`repro.engine.store.default_results_dir`).
    strict:
        Raise :class:`EngineError` when any cell failed (after caching
        the successful ones).  ``False`` returns the failures in the
        report and fills their rows' positions by skipping them.
    shard:
        ``(k, n)``, 1-based: execute only the ``k``-th of ``n``
        contiguous balanced shards of the grid (see
        :func:`shard_bounds`) and return only that shard's rows.  For
        distributing one sweep across machines or invocations; every
        shard shares the spec's cache file.
    shards:
        Run the whole grid as this many in-process shards, one process
        pool per shard, sequentially.  Mutually exclusive with
        ``shard``.
    """
    started = time.perf_counter()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shard is not None and shards != 1:
        raise ValueError("pass either shard=(k, n) or shards=N, not both")
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    grid = spec.cells()
    if shard is not None:
        lo, hi = shard_bounds(len(grid), *shard)
        cells = grid[lo:hi]
    else:
        cells = grid
    store = ResultStore(results_dir)  # None -> REPRO_RESULTS_DIR / anchored default

    cached: Dict[Tuple[str, str, int], RunSummary] = store.load(spec) if cache else {}
    pending = [cell for cell in cells if cell.key not in cached]

    flush: Flush = (lambda batch: store.append(spec, batch)) if cache else None
    fresh: List[CellOutcome] = []
    if pending:
        if shards > 1:
            # In-process multi-shard: partition the *grid* (not the
            # pending list) so the shard boundaries match a distributed
            # --shard K/N run of the same spec, then give each shard's
            # pending cells their own pool.
            for index in range(1, shards + 1):
                lo, hi = shard_bounds(len(grid), index, shards)
                keys = {cell.key for cell in grid[lo:hi]}
                part = [cell for cell in pending if cell.key in keys]
                if not part:
                    continue
                if jobs <= 1 or len(part) == 1:
                    fresh.extend(_execute_serial(part, spec, flush))
                else:
                    fresh.extend(_execute_parallel(part, spec, min(jobs, len(part)), flush))
        elif jobs <= 1 or len(pending) == 1:
            fresh = _execute_serial(pending, spec, flush)
        else:
            fresh = _execute_parallel(pending, spec, min(jobs, len(pending)), flush)

    by_key: Dict[Tuple[str, str, int], RunSummary] = dict(cached)
    failures: List[CellOutcome] = []
    for outcome in fresh:
        if outcome.summary is not None:
            by_key[outcome.key] = outcome.summary
        else:
            failures.append(outcome)
    if failures and strict:
        raise EngineError(failures)

    rows = [by_key[cell.key] for cell in cells if cell.key in by_key]
    return EngineReport(
        spec=spec,
        rows=rows,
        failures=failures,
        cache_hits=len(cells) - len(pending),
        executed=len(pending),
        jobs=jobs,
        wall_time_s=time.perf_counter() - started,
        store_path=store.path_for(spec) if cache else None,
        shard=shard,
        shards=shards,
        total_cells=len(grid),
    )


__all__ = [
    "EngineError",
    "EngineReport",
    "default_jobs",
    "parse_shard",
    "run_experiment",
    "shard_bounds",
]
