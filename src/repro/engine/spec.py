"""Declarative experiment specifications.

An :class:`ExperimentSpec` names an (algorithm x scenario x seed) grid
without holding any live objects: algorithms are referenced by registry
name or ``module:qualname`` import path, scenarios by the factory that
builds them plus its keyword arguments.  That makes a spec

* **picklable** -- the parallel driver ships only primitives to worker
  processes and each worker rebuilds its cell from scratch;
* **hashable** -- :meth:`ExperimentSpec.content_hash` is a stable
  digest of the canonical JSON payload, used to key the JSONL result
  cache under ``results/engine/``.

Construction normally goes through :meth:`ExperimentSpec.from_objects`,
which accepts the same ``{label: AlgorithmClass}`` /
``[Scenario, ...]`` arguments as :func:`repro.workloads.sweep.run_matrix`
and derives the references automatically (scenario factories attach a
``ref`` to every instance they build; see
:mod:`repro.workloads.scenarios`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Bumped whenever the payload layout or the RunSummary fields change in
#: a way that invalidates previously cached results.
#: 2: RunSummary embeds the Theorem 1-4 PropertyReport.
#: 3: specs carry a memory-backend axis; RunSummary records the backend
#:    and the emulation's message count.
#: 4: specs carry a consistency axis; RunSummary records the consistency
#:    level and the history-audit outcome.
#: 5: scenarios can carry fault-plan timelines (repro.faults) and retry
#:    policies; RunSummary records the resilience counters
#:    (retransmissions, recoveries, resyncs, integrity_violations).
#: 6: RunSummary records the fuzz coverage censuses (leader_changes,
#:    write_backs).
#: 7: specs carry a membership axis (dynamic replica membership;
#:    repro.memory.membership); RunSummary records the reconfiguration
#:    counters (configs_installed, dual_quorum_ops, transfer_rounds).
SPEC_FORMAT = 7


def _canonical(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ScenarioRef:
    """A scenario as ``factory name + keyword arguments``.

    ``kwargs`` is stored as a sorted tuple of items so the ref is
    hashable and its JSON payload is canonical; values must be
    JSON-serializable (every factory in
    :mod:`repro.workloads.scenarios` takes only numbers, strings and
    ``None``).
    """

    factory: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, factory: str, kwargs: Mapping[str, Any] | None = None) -> "ScenarioRef":
        """Build a ref, validating that ``kwargs`` is JSON-serializable."""
        items = tuple(sorted((kwargs or {}).items()))
        json.dumps(dict(items))  # fail fast on unserializable values
        return cls(factory=factory, kwargs=items)

    def kwargs_dict(self) -> Dict[str, Any]:
        """The keyword arguments as a plain dict."""
        return dict(self.kwargs)

    def key(self) -> str:
        """Stable identifier used in cell keys and the result store."""
        return f"{self.factory}({_canonical(self.kwargs_dict())})"

    def to_payload(self) -> Dict[str, Any]:
        """The JSON form stored in spec payloads."""
        return {"factory": self.factory, "kwargs": self.kwargs_dict()}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioRef":
        """Rebuild a ref from its JSON form."""
        return cls.make(payload["factory"], payload.get("kwargs") or {})


@dataclass(frozen=True)
class AlgorithmRef:
    """An algorithm as ``display label + import target``.

    ``target`` is either a name in
    :data:`repro.workloads.registry.ALGORITHMS` or a
    ``module:qualname`` path; ``label`` is what the resulting rows carry
    in their ``algorithm`` column (benches use richer labels such as
    ``"alg1 (Fig 2)"``).
    """

    label: str
    target: str

    def to_payload(self) -> Dict[str, Any]:
        """The JSON form stored in spec payloads."""
        return {"label": self.label, "target": self.target}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AlgorithmRef":
        """Rebuild a ref from its JSON form."""
        return cls(label=payload["label"], target=payload["target"])


@dataclass(frozen=True)
class Cell:
    """One grid point: (algorithm, scenario, seed)."""

    algorithm: AlgorithmRef
    scenario: ScenarioRef
    seed: int

    @property
    def key(self) -> Tuple[str, str, int]:
        """The cell's identity in caches and reports."""
        return (self.algorithm.label, self.scenario.key(), self.seed)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, content-addressed experiment grid.

    Parameters
    ----------
    name:
        Human-readable experiment id; prefixes the cache file name.
    algorithms / scenarios / seeds:
        The grid axes.
    window:
        Tail-window width forwarded to the census summarizer.
    fast:
        When true (the default) workers run cells in the low-overhead
        mode (``log_reads=False``, ``trace_events=False``); summaries
        are identical either way because the summarizer only consumes
        the write log, the aggregate counters and the sample trace.
    memory:
        Memory-backend override for every cell
        (:data:`repro.memory.backend.BACKENDS`).  ``None`` -- the
        default -- leaves each scenario's own backend choice in force
        (so the ``*-emulated`` factories still emulate); ``"emulated"``
        forces the ABD emulation onto every cell (the ``repro sweep
        --memory emulated`` path) and ``"shared"`` forces the shared
        backend even onto emulated-native scenarios.
    consistency:
        Consistency-level override for every *emulated* cell
        (:data:`repro.memory.emulated.CONSISTENCY_LEVELS`).  ``None``
        -- the default -- leaves each scenario's own level in force;
        ``"atomic"``/``"regular"`` force the level onto every cell that
        runs the emulated backend (the ``repro sweep --consistency``
        path).  Cells on the shared backend ignore it (their registers
        are atomic by construction).
    membership:
        Dynamic-membership override for every *emulated* cell
        (:data:`repro.memory.membership.MEMBERSHIP_MODES`).  ``None``
        -- the default -- leaves each scenario's own membership plan in
        force; ``"churn"`` forces the canonical replace-one-replica
        reconfiguration (scaled to each cell's horizon) onto every
        emulated cell and ``"none"`` strips membership plans (the
        churn-free control).  Cells on the shared backend ignore it.
    """

    name: str
    algorithms: Tuple[AlgorithmRef, ...]
    scenarios: Tuple[ScenarioRef, ...]
    seeds: Tuple[int, ...]
    window: float = 100.0
    fast: bool = True
    memory: Optional[str] = None
    consistency: Optional[str] = None
    membership: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.memory.backend import BACKENDS
        from repro.memory.emulated import CONSISTENCY_LEVELS
        from repro.memory.membership import MEMBERSHIP_MODES

        if not self.algorithms or not self.scenarios or not self.seeds:
            raise ValueError("spec needs at least one algorithm, scenario and seed")
        if self.memory is not None and self.memory not in BACKENDS:
            raise ValueError(
                f"unknown memory backend {self.memory!r}; choose from {sorted(BACKENDS)}"
            )
        if self.consistency is not None and self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency level {self.consistency!r}; "
                f"choose from {list(CONSISTENCY_LEVELS)}"
            )
        if self.membership is not None and self.membership not in MEMBERSHIP_MODES:
            raise ValueError(
                f"unknown membership mode {self.membership!r}; "
                f"choose from {list(MEMBERSHIP_MODES)}"
            )
        labels = [a.label for a in self.algorithms]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate algorithm labels in spec: {labels}")

    # ------------------------------------------------------------------
    def cells(self) -> List[Cell]:
        """The grid in deterministic scenario-major order.

        Matches the historical ``run_matrix`` nesting (scenario, then
        algorithm, then seed) so engine rows line up with legacy rows.
        """
        return [
            Cell(algorithm=alg, scenario=scen, seed=seed)
            for scen in self.scenarios
            for alg in self.algorithms
            for seed in self.seeds
        ]

    def size(self) -> int:
        """Number of grid cells."""
        return len(self.algorithms) * len(self.scenarios) * len(self.seeds)

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The canonical JSON form (hashed by :meth:`content_hash`)."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "algorithms": [a.to_payload() for a in self.algorithms],
            "scenarios": [s.to_payload() for s in self.scenarios],
            "seeds": list(self.seeds),
            "window": self.window,
            "fast": self.fast,
            "memory": self.memory,
            "consistency": self.consistency,
            "membership": self.membership,
        }

    def content_hash(self) -> str:
        """Stable 16-hex-digit digest of the grid content.

        The ``name`` is cosmetic and excluded, so renaming an experiment
        does not orphan its cache.
        """
        payload = self.to_payload()
        payload.pop("name")
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    @classmethod
    def from_objects(
        cls,
        name: str,
        algorithms: Mapping[str, type],
        scenarios: Sequence[Any],
        seeds: Iterable[int],
        *,
        window: float = 100.0,
        fast: bool = True,
        memory: Optional[str] = None,
        consistency: Optional[str] = None,
        membership: Optional[str] = None,
    ) -> "ExperimentSpec":
        """Build a spec from live objects (the ``run_matrix`` arguments).

        Every scenario must carry a ``ref`` attribute -- a
        ``(factory_name, kwargs)`` tuple attached by the factory
        decorator in :mod:`repro.workloads.scenarios`.  Hand-built
        :class:`~repro.workloads.scenarios.Scenario` instances (no
        ``ref``) cannot cross process boundaries; callers fall back to
        the in-process path for those.
        """
        from repro.workloads.registry import algorithm_target

        algo_refs = tuple(
            AlgorithmRef(label=label, target=algorithm_target(algo_cls))
            for label, algo_cls in algorithms.items()
        )
        scen_refs = []
        for scen in scenarios:
            ref = getattr(scen, "ref", None)
            if ref is None:
                raise ValueError(
                    f"scenario {getattr(scen, 'name', scen)!r} has no factory ref; "
                    "build it through a repro.workloads.scenarios factory or run it "
                    "in-process"
                )
            scen_refs.append(ScenarioRef.make(ref[0], ref[1]))
        return cls(
            name=name,
            algorithms=algo_refs,
            scenarios=tuple(scen_refs),
            seeds=tuple(int(s) for s in seeds),
            window=window,
            fast=fast,
            memory=memory,
            consistency=consistency,
            membership=membership,
        )


__all__ = ["AlgorithmRef", "Cell", "ExperimentSpec", "SPEC_FORMAT", "ScenarioRef"]
