"""Kernel-purity rule family: the compiled subset stays compilable.

``tools/build_kernel_ext.py`` concatenates ``repro/sim/events.py`` and
``repro/sim/kernel.py`` into one ``_ckernel`` compilation unit.  That
build has hard structural preconditions, and violating them is not a
style problem -- ``--pure`` mode literally exits:

``purity-rebind-marker``
    Each kernel module must contain the rebind marker
    (:data:`~repro.lint.config.REBIND_MARKER`); ``_strip_tail`` raises
    ``SystemExit`` when it is missing.  Everything below the marker is
    the uncompiled variant-selection tail and is exempt from the other
    purity rules.
``purity-import``
    Imports above the marker must stay inside
    :data:`~repro.lint.config.KERNEL_ALLOWED_IMPORTS` -- anything else
    survives concatenation into the ``.pyx`` and breaks the closed
    compilation unit.  Relative imports are always flagged: the
    concatenator's import stripper only recognises the absolute
    ``from repro.sim.events import ...`` form.
``purity-decorator``
    Decorators outside :data:`~repro.lint.config.KERNEL_ALLOWED_DECORATORS`
    on any function/class above the marker.
``purity-dynamic``
    Dynamic attribute injection or code execution (``setattr``,
    ``delattr``, ``exec``, ``eval``, ``compile``, ``__import__``,
    ``globals()``-mutation idioms) -- the kernel classes are
    ``__slots__``-closed and must stay statically analysable.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.config import (
    KERNEL_ALLOWED_DECORATORS,
    KERNEL_ALLOWED_IMPORTS,
    REBIND_MARKER,
    is_kernel_module,
)
from repro.lint.findings import Finding, SourceFile, dotted_name

#: Builtins that inject attributes or execute dynamic code.
_DYNAMIC_BUILTINS = frozenset(
    {"setattr", "delattr", "exec", "eval", "compile", "__import__", "globals", "vars"}
)


def _marker_line(text: str) -> int | None:
    """1-indexed line of the rebind marker, or ``None`` when missing."""
    for idx, line in enumerate(text.splitlines(), start=1):
        if line.startswith(REBIND_MARKER):
            return idx
    return None


def _import_root(module: str) -> str:
    """Allowlist key for an imported module name.

    ``repro.*`` modules are matched in full (only ``repro.sim.events``
    is strippable); stdlib modules are matched by their top package.
    """
    return module if module.startswith("repro.") else module.split(".", 1)[0]


def check(source: SourceFile) -> List[Finding]:
    """Run the purity family on one parsed kernel module."""
    if source.tree is None or not is_kernel_module(source.path):
        return []
    findings: List[Finding] = []

    def emit(rule: str, node: ast.AST, message: str) -> None:
        """Record one finding at ``node``'s location."""
        findings.append(
            Finding(rule=rule, path=source.path, line=getattr(node, "lineno", 1), message=message)
        )

    marker = _marker_line(source.text)
    if marker is None:
        findings.append(
            Finding(
                rule="purity-rebind-marker",
                path=source.path,
                line=1,
                message=(
                    f"missing {REBIND_MARKER!r} marker: "
                    "tools/build_kernel_ext.py --pure exits on this module"
                ),
            )
        )
        marker_cut = float("inf")  # lint the whole file
    else:
        marker_cut = float(marker)

    for node in ast.walk(source.tree):
        line = getattr(node, "lineno", None)
        if line is None or line >= marker_cut:
            continue  # the rebind tail is not compiled
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = _import_root(alias.name)
                if root not in KERNEL_ALLOWED_IMPORTS:
                    emit(
                        "purity-import",
                        node,
                        f"import {alias.name!r} is outside the compiled-kernel "
                        f"closure {sorted(KERNEL_ALLOWED_IMPORTS)}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                emit(
                    "purity-import",
                    node,
                    "relative import in a kernel module: the concatenator only "
                    "strips absolute 'from repro.sim.events import ...'",
                )
            elif node.module and _import_root(node.module) not in KERNEL_ALLOWED_IMPORTS:
                emit(
                    "purity-import",
                    node,
                    f"from {node.module!r} import ... is outside the "
                    f"compiled-kernel closure {sorted(KERNEL_ALLOWED_IMPORTS)}",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for dec in node.decorator_list:
                name = dotted_name(dec if not isinstance(dec, ast.Call) else dec.func)
                if name is None or name.split(".")[-1] not in KERNEL_ALLOWED_DECORATORS:
                    shown = name or "<dynamic>"
                    emit(
                        "purity-decorator",
                        dec,
                        f"decorator @{shown} on {node.name!r} is outside the "
                        "compilable subset",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _DYNAMIC_BUILTINS:
                emit(
                    "purity-dynamic",
                    node,
                    f"{node.func.id}() in a kernel module: dynamic attribute "
                    "injection/execution breaks static compilation",
                )
    return findings
