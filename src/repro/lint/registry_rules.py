"""Registry-completeness rule family: every registry entry is reachable.

The repo's registries (scenario factories, memory backends, link
models) are the join points between the workload layer, the CLI, and
the test suite.  An entry that exists in a registry but is unreachable
from ``repro check`` / the CLI / any test is dead configuration that
silently rots.  Rules (tree-level -- they read several files at once):

``registry-check-coverage``
    Every ``SCENARIO_FACTORIES`` key appears in ``CHECK_SCENARIOS`` or
    the explicit ``CHECK_EXEMPT_SCENARIOS`` list in ``cli.py`` -- and
    neither list names a scenario that no longer exists.
``registry-cli-surface``
    Every ``BACKENDS`` backend and every ``LINK_MODELS`` entry is
    selectable from the CLI (a literal choice, or the dynamic
    ``sorted(BACKENDS)`` / ``sorted(LINK_MODELS)`` forms that cover all
    keys by construction).
``registry-test-coverage``
    Every ``BACKENDS`` and ``LINK_MODELS`` key appears (quoted) in at
    least one test module.

The rule reads files by fixed relative names under the package root
(``cli.py``, ``workloads/registry.py``, ``memory/backend.py``,
``memory/emulated.py``); a missing file skips its checks so minimal
fixture trees can exercise each check in isolation.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

#: Registry-file locations relative to the package root.
_REGISTRY_REL = "workloads/registry.py"
_CLI_REL = "cli.py"
_BACKEND_REL = "memory/backend.py"
_EMULATED_REL = "memory/emulated.py"


def _parse(path: Path) -> ast.Module | None:
    """Parse ``path``, returning ``None`` when absent or unparsable."""
    if not path.is_file():
        return None
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError:
        return None


def _dict_keys(tree: ast.Module, name: str) -> Dict[str, int]:
    """String keys (with line numbers) of a module-level ``name = {...}``.

    Handles both plain and annotated assignments; non-string keys are
    ignored (the registries key on names only).
    """
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            return {}
        keys: Dict[str, int] = {}
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = key.lineno
        return keys
    return {}


def _list_values(tree: ast.Module, name: str) -> Tuple[Dict[str, int], bool]:
    """String elements of a module-level ``name = [...]`` list.

    Returns ``(values_with_lines, found)`` -- ``found`` distinguishes an
    empty list from a missing assignment.
    """
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        value = node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return {}, True
        values: Dict[str, int] = {}
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                values[elt.value] = elt.lineno
        return values, True
    return {}, False


def _quoted_in_tree(key: str, tests_dir: Path) -> bool:
    """True when ``key`` appears quoted in any test module."""
    needles = (f'"{key}"', f"'{key}'")
    for test_file in sorted(tests_dir.rglob("*.py")):
        try:
            text = test_file.read_text(encoding="utf-8")
        except OSError:
            continue
        if any(needle in text for needle in needles):
            return True
    return False


def _cli_surface_covers(cli_text: str, registry_name: str, key: str) -> bool:
    """True when the CLI exposes ``key`` from registry ``registry_name``.

    Coverage is either the dynamic ``sorted(<REGISTRY>)`` choices form
    (which exposes every key by construction) or the key appearing as a
    quoted literal anywhere in ``cli.py``.
    """
    if f"sorted({registry_name})" in cli_text:
        return True
    return f'"{key}"' in cli_text or f"'{key}'" in cli_text


def check_tree(root: Path, tests_dir: Path | None) -> List[Finding]:
    """Run the registry family over a package tree rooted at ``root``."""
    findings: List[Finding] = []
    registry_path = root / _REGISTRY_REL
    cli_path = root / _CLI_REL
    registry_tree = _parse(registry_path)
    cli_tree = _parse(cli_path)
    cli_text = cli_path.read_text(encoding="utf-8") if cli_path.is_file() else ""

    # -- check-suite coverage of the scenario registry -----------------
    if registry_tree is not None and cli_tree is not None:
        factories = _dict_keys(registry_tree, "SCENARIO_FACTORIES")
        checked, _ = _list_values(cli_tree, "CHECK_SCENARIOS")
        exempt, has_exempt = _list_values(cli_tree, "CHECK_EXEMPT_SCENARIOS")
        if not has_exempt:
            findings.append(
                Finding(
                    rule="registry-check-coverage",
                    path=str(cli_path),
                    line=1,
                    message=(
                        "cli.py defines no CHECK_EXEMPT_SCENARIOS list; every "
                        "scenario factory must be audited or explicitly exempted"
                    ),
                )
            )
        covered = set(checked) | set(exempt)
        for key, line in sorted(factories.items()):
            if key not in covered:
                findings.append(
                    Finding(
                        rule="registry-check-coverage",
                        path=str(registry_path),
                        line=line,
                        message=(
                            f"scenario factory {key!r} is neither in "
                            "CHECK_SCENARIOS nor CHECK_EXEMPT_SCENARIOS"
                        ),
                    )
                )
        for key, line in sorted({**checked, **exempt}.items()):
            if factories and key not in factories:
                findings.append(
                    Finding(
                        rule="registry-check-coverage",
                        path=str(cli_path),
                        line=line,
                        message=f"check list names unknown scenario {key!r}",
                    )
                )
        overlap = sorted(set(checked) & set(exempt))
        for key in overlap:
            findings.append(
                Finding(
                    rule="registry-check-coverage",
                    path=str(cli_path),
                    line=exempt[key],
                    message=f"scenario {key!r} is both checked and exempted",
                )
            )

    # -- CLI surface + test coverage of backends and link models -------
    for rel, registry_name in ((_BACKEND_REL, "BACKENDS"), (_EMULATED_REL, "LINK_MODELS")):
        tree = _parse(root / rel)
        if tree is None:
            continue
        keys = _dict_keys(tree, registry_name)
        for key, line in sorted(keys.items()):
            if cli_text and not _cli_surface_covers(cli_text, registry_name, key):
                findings.append(
                    Finding(
                        rule="registry-cli-surface",
                        path=str(root / rel),
                        line=line,
                        message=(
                            f"{registry_name} entry {key!r} has no CLI choice "
                            f"(no sorted({registry_name}) choices and no "
                            "literal mention in cli.py)"
                        ),
                    )
                )
            if tests_dir is not None and tests_dir.is_dir():
                if not _quoted_in_tree(key, tests_dir):
                    findings.append(
                        Finding(
                            rule="registry-test-coverage",
                            path=str(root / rel),
                            line=line,
                            message=(
                                f"{registry_name} entry {key!r} is referenced "
                                "by no test module"
                            ),
                        )
                    )
    return findings
