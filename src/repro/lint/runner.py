"""Lint orchestration: walk the tree, run rules, apply the ratchet.

:func:`run_lint` is the single programmatic entry point; ``repro lint``
(:func:`repro.cli.cmd_lint`) is a thin argparse shim over it.  The
pipeline is: discover ``*.py`` files under the package root (skipping
generated ``_ckernel*`` artifacts), parse each once, run every enabled
per-file rule plus the tree-level registry rule, drop findings silenced
by ``# repro-lint: disable=...`` comments, then partition the survivors
against the committed baseline (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.lint import determinism, dispatch, purity, registry_rules, typing_rules
from repro.lint.baseline import Baseline, load_baseline
from repro.lint.config import DEFAULT_BASELINE, DEFAULT_ROOT
from repro.lint.findings import Finding, SourceFile

#: The rule families ``--rules`` may select.
RULE_FAMILIES: FrozenSet[str] = frozenset(
    {"determinism", "purity", "registry", "dispatch", "typing"}
)

#: Per-file rule entry points, keyed by family.
_FILE_RULES: Dict[str, Callable[[SourceFile], List[Finding]]] = {
    "determinism": determinism.check,
    "purity": purity.check,
    "dispatch": dispatch.check,
    "typing": typing_rules.check,
}


@dataclass
class LintReport:
    """Everything one lint run produced, ratchet already applied."""

    #: All findings that survived suppression comments.
    findings: List[Finding] = field(default_factory=list)
    #: Findings not covered by the baseline (fatal).
    new: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline (reported, not fatal).
    grandfathered: List[Finding] = field(default_factory=list)
    #: Baseline keys with no matching finding (fatal: bank the fix).
    stale_keys: List[str] = field(default_factory=list)
    #: Findings silenced by disable comments.
    suppressed: int = 0
    #: Number of source files scanned.
    files_scanned: int = 0
    #: The baseline the ratchet ran against.
    baseline: Baseline = field(default_factory=Baseline)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 on any new finding or stale baseline entry."""
        return 1 if self.new or self.stale_keys else 0

    def render(self) -> str:
        """Terminal-ready report text."""
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        for finding in self.grandfathered:
            lines.append(f"{finding.render()} (baselined)")
        for key in self.stale_keys:
            lines.append(
                f"stale baseline entry (already fixed -- run "
                f"`repro lint --update-baseline` to bank it): {key}"
            )
        lines.append(
            f"repro lint: {self.files_scanned} file(s), "
            f"{len(self.new)} new finding(s), "
            f"{len(self.grandfathered)} baselined, "
            f"{len(self.stale_keys)} stale baseline entr(ies), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)


def iter_source_files(root: Path) -> List[Path]:
    """All lintable ``*.py`` files under ``root``, sorted.

    Generated compiled-kernel artifacts (``_ckernel*``) mirror
    already-linted sources and are skipped, as are caches.
    """
    files: List[Path] = []
    for path in sorted(root.rglob("*.py")):
        if path.name.startswith("_ckernel"):
            continue
        if "__pycache__" in path.parts:
            continue
        files.append(path)
    return files


def _display_path(path: Path, root: Path) -> str:
    """Stable, root-anchored display path (``repro/sim/events.py``)."""
    try:
        rel = path.relative_to(root)
    except ValueError:
        return path.as_posix()
    return (Path(root.name) / rel).as_posix()


def run_lint(
    root: Optional[Path] = None,
    tests_dir: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    families: Optional[Sequence[str]] = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint the tree under ``root`` and return the full report.

    ``root`` defaults to the installed ``repro`` package;
    ``tests_dir`` to the sibling ``tests/`` tree when one exists;
    ``baseline_path`` to the committed ``tools/lint_baseline.json``.
    ``families`` restricts the run to a subset of
    :data:`RULE_FAMILIES`; ``use_baseline=False`` treats every finding
    as new (the CI mode for fixture trees).
    """
    root = (root or DEFAULT_ROOT).resolve()
    if tests_dir is None:
        candidate = root.parent.parent / "tests"
        tests_dir = candidate if candidate.is_dir() else None
    selected = frozenset(families) if families else RULE_FAMILIES
    unknown = selected - RULE_FAMILIES
    if unknown:
        raise ValueError(f"unknown rule families: {sorted(unknown)}")

    report = LintReport()
    raw: List[Finding] = []
    sources: Dict[str, SourceFile] = {}
    for path in iter_source_files(root):
        shown = _display_path(path, root)
        source = SourceFile.load(path, display_path=shown)
        sources[shown] = source
        report.files_scanned += 1
        if source.tree is None:
            raw.append(
                Finding(
                    rule="lint-parse-error",
                    path=shown,
                    line=1,
                    message="file does not parse; no rules were applied",
                )
            )
            continue
        for family, rule in _FILE_RULES.items():
            if family in selected:
                raw.extend(rule(source))

    if "registry" in selected:
        for finding in registry_rules.check_tree(root, tests_dir):
            shown = _display_path(Path(finding.path), root)
            raw.append(
                Finding(rule=finding.rule, path=shown, line=finding.line, message=finding.message)
            )

    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule, f.message)):
        source = sources.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            report.suppressed += 1
            continue
        report.findings.append(finding)

    baseline = (
        load_baseline(baseline_path or DEFAULT_BASELINE) if use_baseline else Baseline()
    )
    report.baseline = baseline
    report.new, report.grandfathered, report.stale_keys = baseline.partition(report.findings)
    return report
