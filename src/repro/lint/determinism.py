"""Determinism rule family: no wall-clock, no entropy, no set-order.

Byte-identical summaries are the repo's core acceptance property, so
modules in the simulation/summary packages must draw *all* time from
the kernel clock and *all* randomness from seeded
:class:`~repro.sim.rng.RngRegistry` streams.  Rules:

``determinism-wall-clock``
    Calls into :data:`~repro.lint.config.FORBIDDEN_CALLS` whose message
    mentions clocks (``time.*``, ``datetime.*``).
``determinism-entropy``
    Calls into ambient entropy (``os.urandom``, ``secrets.*``,
    ``uuid.uuid1/4``).
``determinism-global-random``
    Module-level ``random.*`` functions -- the process-global PRNG whose
    state leaks between runs.  Seeded ``random.Random`` instances stay
    allowed (that *is* the sanctioned mechanism).
``determinism-set-pop``
    ``s.pop()`` on a value bound to a set display/comprehension/
    ``set()``-``frozenset()`` call: which element pops is hash-order
    dependent.
``determinism-next-iter``
    ``next(iter(x))``: extracts an order-dependent representative;
    use ``min``/``max``/``sorted(...)[0]`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lint.config import (
    FORBIDDEN_CALLS,
    GLOBAL_RANDOM_FUNCTIONS,
    in_determinism_scope,
)
from repro.lint.findings import Finding, SourceFile, import_aliases, resolve_call_target

#: Canonical targets classified as entropy rather than wall-clock.
_ENTROPY_PREFIXES = ("os.", "secrets.", "uuid.")


def _is_set_expression(node: ast.AST) -> bool:
    """True for expressions that statically produce a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    """Collects determinism findings for one module."""

    def __init__(self, source: SourceFile, aliases: Dict[str, str]) -> None:
        """Bind the source under scan and its import-alias map."""
        self.source = source
        self.aliases = aliases
        self.findings: List[Finding] = []
        #: Names currently known to be set-bound, per enclosing scope.
        self._set_names: List[Set[str]] = [set()]

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        """Record one finding at ``node``'s location."""
        self.findings.append(
            Finding(rule=rule, path=self.source.path, line=getattr(node, "lineno", 1), message=message)
        )

    # -- scope tracking for set-bound names ----------------------------
    def _enter_scope(self, node: ast.AST) -> None:
        """Visit a function body with a fresh set-binding scope."""
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Functions open a new set-binding scope."""
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async functions open a new set-binding scope."""
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``name = {…} / set(…)`` bindings; untrack reassignments."""
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expression(node.value):
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def _is_set_bound(self, name: str) -> bool:
        """True when any enclosing scope bound ``name`` to a set."""
        return any(name in scope for scope in self._set_names)

    # -- the checks ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Flag forbidden calls, global random, set-pop, next-iter."""
        target = resolve_call_target(node, self.aliases)
        if target in FORBIDDEN_CALLS:
            rule = (
                "determinism-entropy"
                if target.startswith(_ENTROPY_PREFIXES)
                else "determinism-wall-clock"
            )
            self._emit(rule, node, f"{target}: {FORBIDDEN_CALLS[target]}")
        elif target in GLOBAL_RANDOM_FUNCTIONS:
            self._emit(
                "determinism-global-random",
                node,
                f"{target}: module-level random shares global PRNG state; "
                "use a seeded RngRegistry stream",
            )
        # s.pop() on a set-bound name: hash-order dependent extraction.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and not node.keywords
            and isinstance(node.func.value, ast.Name)
            and self._is_set_bound(node.func.value.id)
        ):
            self._emit(
                "determinism-set-pop",
                node,
                f"{node.func.value.id}.pop() on a set extracts a hash-order-"
                "dependent element; use min()/max() or sorted()",
            )
        # next(iter(x)): order-dependent representative extraction.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "iter"
        ):
            self._emit(
                "determinism-next-iter",
                node,
                "next(iter(...)) extracts an order-dependent representative; "
                "use min()/max() or sorted()",
            )
        self.generic_visit(node)


def check(source: SourceFile) -> List[Finding]:
    """Run the determinism family on one parsed source file."""
    if source.tree is None or not in_determinism_scope(source.path):
        return []
    visitor = _DeterminismVisitor(source, import_aliases(source.tree))
    visitor.visit(source.tree)
    return visitor.findings
