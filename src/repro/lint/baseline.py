"""The lint baseline ratchet: grandfathered findings may only shrink.

A baseline is a committed JSON multiset of finding keys
(:attr:`~repro.lint.findings.Finding.baseline_key` -- path, rule, and
message, deliberately line-number free).  The contract mirrors the
docstring-coverage ratchet:

* a finding whose key is in the baseline (within its count) is
  *grandfathered* -- reported but not fatal;
* a finding outside the baseline is *new* and fails the run;
* a baseline entry with no matching finding is *stale* and also fails
  the run -- the fix must be banked by shrinking the baseline
  (``repro lint --update-baseline``), so the count monotonically
  decreases.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

#: Schema version written into baseline files.
_BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A committed multiset of grandfathered finding keys."""

    #: Finding key -> allowed occurrence count.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Where the baseline was loaded from (``None`` for in-memory ones).
    path: Path | None = None

    @property
    def total(self) -> int:
        """Total grandfathered findings (the number being ratcheted)."""
        return sum(self.counts.values())

    def partition(self, findings: List[Finding]) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split ``findings`` against the baseline.

        Returns ``(new, grandfathered, stale_keys)``: findings not
        covered by the baseline, findings absorbed by it, and baseline
        keys left unmatched (fixed findings that must be banked).
        """
        remaining = Counter(self.counts)
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0 for _ in range(count))
        return new, grandfathered, stale


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.is_file():
        return Baseline(counts={}, path=path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    raw = payload.get("findings", {})
    counts = {str(key): int(count) for key, count in raw.items() if int(count) > 0}
    return Baseline(counts=counts, path=path)


def write_baseline(path: Path, findings: List[Finding]) -> Baseline:
    """Write ``findings`` as the new baseline and return it."""
    counts = Counter(finding.baseline_key for finding in findings)
    payload = {
        "version": _BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` findings. Ratchet: this count may "
            "only go down; regenerate with `repro lint --update-baseline` "
            "after fixing a finding."
        ),
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return Baseline(counts=dict(counts), path=path)
