"""Finding records, suppression comments, and parsed-source handling.

A :class:`Finding` is one rule violation at one source location.  Rules
never print; they return findings and the runner decides what survives
suppression comments (``# repro-lint: disable=<rule>``) and the
committed baseline.

Suppressions are honoured on the finding's own line or the line
directly above it, and accept a comma-separated list of rule names,
rule families (the prefix before the first ``-``), or ``all``::

    leader = finals.pop()  # repro-lint: disable=determinism-set-pop
    # repro-lint: disable=all
    t0 = time.time()
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, List, Set

#: Comment grammar: ``# repro-lint: disable=name[,name...]``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w\-,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Dashed rule name, e.g. ``determinism-wall-clock``; the family is
    #: the prefix before the first dash.
    rule: str
    #: Path of the offending file, repo-relative when possible.
    path: str
    #: 1-indexed source line.
    line: int
    #: Human-readable description of the violation.
    message: str

    @property
    def family(self) -> str:
        """Rule family: the rule-name prefix before the first dash."""
        return self.rule.split("-", 1)[0]

    @property
    def baseline_key(self) -> str:
        """Line-number-independent identity used by the baseline ratchet.

        Dropping the line number keeps baselines stable across unrelated
        edits above a grandfathered finding.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """Format as ``path:line: [rule] message`` for terminal output."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed source file handed to every rule.

    Parsing and suppression-comment extraction happen once per file here
    rather than once per rule; rules receive the shared instance.
    """

    #: Path as given to the runner (used in findings verbatim).
    path: str
    #: Raw source text.
    text: str
    #: Parsed module, or ``None`` when the file failed to parse (the
    #: runner emits a ``parse-error`` finding instead).
    tree: ast.Module | None = None
    #: Line -> set of suppressed rule/family names (or ``{"all"}``).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display_path: str | None = None) -> "SourceFile":
        """Read and parse ``path``, collecting suppression comments."""
        text = path.read_text(encoding="utf-8")
        shown = display_path if display_path is not None else str(path)
        source = cls(path=shown, text=text)
        try:
            source.tree = ast.parse(text, filename=shown)
        except SyntaxError:
            source.tree = None
        source.suppressions = _collect_suppressions(text)
        return source

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a disable comment on the finding's line (or the
        line above) names the rule, its family, or ``all``."""
        for line in (finding.line, finding.line - 1):
            names = self.suppressions.get(line)
            if not names:
                continue
            if "all" in names or finding.rule in names or finding.family in names:
                return True
        return False


def _collect_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line numbers to the rule names disabled on that line.

    Uses the tokenizer rather than a per-line regex so a disable-looking
    string literal cannot silence a rule.  Tokenization errors degrade to
    "no suppressions" -- the parse-error finding covers broken files.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        names = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if names:
            suppressions.setdefault(tok.start[0], set()).update(names)
    return suppressions


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute/name chains to a dotted string.

    Returns ``None`` for anything that is not a pure Name/Attribute
    chain (calls, subscripts, ...).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import time as t`` yields ``{"t": "time"}``;
    ``from os import urandom`` yields ``{"urandom": "os.urandom"}``.
    Star imports are ignored (nothing in this tree uses them).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(node: ast.Call, aliases: Dict[str, str]) -> str | None:
    """Canonical dotted name of a call's target, through import aliases.

    ``t.time()`` with ``import time as t`` resolves to ``time.time``;
    ``urandom(8)`` after ``from os import urandom`` to ``os.urandom``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head
