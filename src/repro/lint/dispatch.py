"""Batch-dispatch safety rule family: handlers stay out of the kernel.

PR 6's batched event core drains equal-timestamp collision buckets with
a locals-only loop: ``Simulator.run`` snapshots ``EventQueue`` state
into locals before dispatching a batch.  A handler that mutates queue
internals mid-batch desynchronises those locals from the queue, and a
handler that re-enters ``Simulator.run`` corrupts the drain outright.
Both are friend-only operations of the kernel module pair.  Rules
(scoped to the handler packages,
:data:`~repro.lint.config.HANDLER_PACKAGES`):

``dispatch-queue-internals``
    Reads or writes of ``EventQueue`` private slots
    (:data:`~repro.lint.config.QUEUE_PRIVATE_ATTRS`) on anything other
    than ``self`` -- handler modules must go through the public
    ``schedule``/``cancel``/``pop`` surface.
``dispatch-reentrant-run``
    ``<...>.sim.run(...)`` / ``sim.run(...)`` / ``simulator.run(...)``
    calls: a handler executes *inside* ``Simulator.run`` and must
    schedule follow-up events instead of recursing into the loop.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.config import QUEUE_PRIVATE_ATTRS, in_handler_scope
from repro.lint.findings import Finding, SourceFile

#: Receiver identifiers treated as "the simulator" for the reentrancy
#: check (``sim.run()``, ``self.sim.run()``, ``simulator.run()``...).
_SIM_NAMES = frozenset({"sim", "simulator", "kernel"})


def _receiver_identifier(node: ast.expr) -> str | None:
    """Final identifier of a call receiver (``self.sim`` -> ``sim``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def check(source: SourceFile) -> List[Finding]:
    """Run the dispatch-safety family on one parsed handler module."""
    if source.tree is None or not in_handler_scope(source.path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) and node.attr in QUEUE_PRIVATE_ATTRS:
            receiver = node.value
            if not (isinstance(receiver, ast.Name) and receiver.id == "self"):
                findings.append(
                    Finding(
                        rule="dispatch-queue-internals",
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"access to EventQueue internal {node.attr!r}: "
                            "handler modules must use the public "
                            "schedule/cancel/pop surface"
                        ),
                    )
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "run"
            and _receiver_identifier(node.func.value) in _SIM_NAMES
        ):
            findings.append(
                Finding(
                    rule="dispatch-reentrant-run",
                    path=source.path,
                    line=node.lineno,
                    message=(
                        "Simulator.run() called from a handler module: "
                        "dispatch callbacks already execute inside the run "
                        "loop; schedule an event instead"
                    ),
                )
            )
    return findings
