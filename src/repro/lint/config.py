"""Scopes, forbidden-call tables, and ratchet surfaces for the linter.

Everything policy-like lives here so the rule modules stay pure
mechanism: which packages the determinism rule patrols, which modules
are concatenated into the compiled kernel, which private attributes
count as ``EventQueue`` internals, and which modules are inside the
strict-typing ratchet.

Scoping is by *path suffix*, not by resolved import, so the rules work
identically on the real tree and on the tmp-dir fixture corpora the
lint tests build (a fixture at ``<tmp>/sim/events.py`` is held to the
same purity contract as ``src/repro/sim/events.py``).
"""

from __future__ import annotations

from pathlib import Path, PurePosixPath
from typing import Dict, FrozenSet, Tuple

#: Default lint root: the ``repro`` package this module sits inside.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: Default committed baseline, repo-relative (``tools/lint_baseline.json``).
DEFAULT_BASELINE = DEFAULT_ROOT.parent.parent / "tools" / "lint_baseline.json"

# ----------------------------------------------------------------------
# Determinism rule scope
# ----------------------------------------------------------------------
#: Directory names whose modules must be wall-clock/entropy free.  The
#: engine/ and perf/ packages are deliberately absent: they *measure*
#: wall-clock time (process-pool timing, benchmark harness), which is
#: observability, not simulation state.
DETERMINISM_PACKAGES: FrozenSet[str] = frozenset(
    {
        "sim",
        "netsim",
        "memory",
        "core",
        "props",
        "analysis",
        "workloads",
        "timers",
        "apps",
        "lint",
        "faults",
        "fuzz",
    }
)

#: Calls that read wall-clock time or ambient entropy.  Any call whose
#: alias-resolved target lands here is nondeterministic by construction.
FORBIDDEN_CALLS: Dict[str, str] = {
    "time.time": "wall-clock read; simulation time must come from the kernel",
    "time.time_ns": "wall-clock read; simulation time must come from the kernel",
    "time.monotonic": "wall-clock read; simulation time must come from the kernel",
    "time.monotonic_ns": "wall-clock read; simulation time must come from the kernel",
    "time.perf_counter": "wall-clock read; only engine/perf may time things",
    "time.perf_counter_ns": "wall-clock read; only engine/perf may time things",
    "datetime.datetime.now": "wall-clock read; derive times from sim.now",
    "datetime.datetime.utcnow": "wall-clock read; derive times from sim.now",
    "datetime.date.today": "wall-clock read; derive times from sim.now",
    "os.urandom": "ambient entropy; use a seeded RngRegistry stream",
    "secrets.token_bytes": "ambient entropy; use a seeded RngRegistry stream",
    "secrets.token_hex": "ambient entropy; use a seeded RngRegistry stream",
    "uuid.uuid1": "host/time-derived id; use a seeded RngRegistry stream",
    "uuid.uuid4": "ambient entropy; use a seeded RngRegistry stream",
}

#: Module-level ``random.*`` functions (the shared global PRNG).  Seeded
#: ``random.Random`` instances (RngRegistry streams) are the sanctioned
#: alternative and remain allowed.
GLOBAL_RANDOM_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.expovariate",
        "random.seed",
        "random.getrandbits",
        "random.betavariate",
        "random.triangular",
    }
)

# ----------------------------------------------------------------------
# Kernel purity scope
# ----------------------------------------------------------------------
#: Path suffixes of the modules ``tools/build_kernel_ext.py``
#: concatenates into ``repro.sim._ckernel``.  Order matters for the
#: build but not for linting.
KERNEL_MODULE_SUFFIXES: Tuple[str, ...] = ("sim/events.py", "sim/kernel.py")

#: The marker ``tools/build_kernel_ext.py`` cuts each module at; source
#: below it (the variant-rebind tail) is NOT compiled and is exempt from
#: the purity rules.  Must match ``build_kernel_ext.REBIND_MARKER``.
REBIND_MARKER = "# --- kernel-variant rebind"

#: Imports the concatenated kernel may keep.  ``repro.sim.events`` is
#: allowed because the concatenator strips it (kernel.py importing its
#: sibling); anything else would survive into the .pyx and break the
#: closed compilation unit.
KERNEL_ALLOWED_IMPORTS: FrozenSet[str] = frozenset(
    {"heapq", "itertools", "typing", "__future__", "repro.sim.events"}
)

#: Decorators the Cython-compiled subset supports on kernel classes and
#: functions.  ``@property`` compiles (the committed kernel uses it);
#: anything registering, caching, or wrapping dynamically does not.
KERNEL_ALLOWED_DECORATORS: FrozenSet[str] = frozenset(
    {"property", "staticmethod", "classmethod"}
)

# ----------------------------------------------------------------------
# Batch-dispatch safety scope
# ----------------------------------------------------------------------
#: ``EventQueue`` internals (its ``__slots__``): only the kernel module
#: pair may touch these friend-style.
QUEUE_PRIVATE_ATTRS: FrozenSet[str] = frozenset(
    {"_heap", "_buckets", "_pool", "_next_seq", "_direct_time"}
)

#: Packages whose modules run *inside* dispatch callbacks; they must not
#: reach into queue internals nor re-enter ``Simulator.run``.
HANDLER_PACKAGES: FrozenSet[str] = frozenset(
    {"netsim", "timers", "memory", "props", "apps", "workloads"}
)

# ----------------------------------------------------------------------
# Strict-typing ratchet
# ----------------------------------------------------------------------
#: Repo-relative module paths (posix style, under ``src/``) that are
#: inside the strict-typing ratchet: every function must be fully
#: annotated, and ``tools/typecheck.py`` runs ``mypy --strict`` on them
#: when mypy is available.  Entries may be dropped from this tuple only
#: together with the module itself -- the typed surface only grows.
STRICT_TYPED_MODULES: Tuple[str, ...] = (
    "repro/sim/variant.py",
    "repro/sim/rng.py",
    "repro/sim/events.py",
    "repro/sim/kernel.py",
    "repro/memory/backend.py",
    "repro/memory/linearizability.py",
    "repro/memory/membership.py",
    "repro/faults/plan.py",
    "repro/fuzz/genome.py",
    "repro/fuzz/coverage.py",
    "repro/lint/findings.py",
    "repro/lint/config.py",
    "repro/lint/baseline.py",
    "repro/lint/determinism.py",
    "repro/lint/purity.py",
    "repro/lint/registry_rules.py",
    "repro/lint/dispatch.py",
    "repro/lint/typing_rules.py",
    "repro/lint/runner.py",
)


def _parts(path: str) -> Tuple[str, ...]:
    """Normalised posix path components of ``path``."""
    return PurePosixPath(path.replace("\\", "/")).parts


def in_determinism_scope(path: str) -> bool:
    """True when the determinism rule patrols ``path``.

    Scope is any module living under one of
    :data:`DETERMINISM_PACKAGES`; generated kernel artifacts
    (``_ckernel*``) are excluded -- they mirror already-linted sources.
    """
    parts = _parts(path)
    if not parts or parts[-1].startswith("_ckernel"):
        return False
    return any(part in DETERMINISM_PACKAGES for part in parts[:-1])


def is_kernel_module(path: str) -> bool:
    """True when ``path`` is concatenated into the compiled kernel."""
    posix = "/".join(_parts(path))
    return any(posix.endswith(suffix) for suffix in KERNEL_MODULE_SUFFIXES)


def in_handler_scope(path: str) -> bool:
    """True when ``path`` runs inside dispatch callbacks (and therefore
    must respect the batch-dispatch safety rule)."""
    parts = _parts(path)
    return any(part in HANDLER_PACKAGES for part in parts[:-1])


def in_strict_typed_surface(path: str) -> bool:
    """True when ``path`` is in the strict-typing ratchet."""
    posix = "/".join(_parts(path))
    return any(posix.endswith(mod) for mod in STRICT_TYPED_MODULES)
