"""Strict-typing ratchet rule: the typed surface only grows.

:data:`~repro.lint.config.STRICT_TYPED_MODULES` names the modules that
``tools/typecheck.py`` holds to ``mypy --strict``.  mypy is an optional
dependency, so this rule enforces the AST-checkable half of the
contract everywhere pytest runs: every function in a strict-typed
module is *fully annotated* (all parameters and the return type).

``typing-missing-annotation``
    A function parameter or return type without an annotation in a
    strict-typed module.  ``self``/``cls`` first parameters and lambdas
    are exempt, matching mypy's own rules.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.config import in_strict_typed_surface
from repro.lint.findings import Finding, SourceFile


def _unannotated_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> List[str]:
    """Names of parameters missing annotations (``self``/``cls`` exempt)."""
    args = node.args
    positional = args.posonlyargs + args.args
    missing: List[str] = []
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in {"self", "cls"} and not args.posonlyargs:
            continue
        if index == 0 and args.posonlyargs and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(star.arg)
    return missing


def check(source: SourceFile) -> List[Finding]:
    """Run the typing ratchet on one parsed strict-typed module."""
    if source.tree is None or not in_strict_typed_surface(source.path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = _unannotated_params(node)
        if missing:
            findings.append(
                Finding(
                    rule="typing-missing-annotation",
                    path=source.path,
                    line=node.lineno,
                    message=(
                        f"{node.name}() leaves parameter(s) "
                        f"{', '.join(repr(m) for m in missing)} unannotated "
                        "in a strict-typed module"
                    ),
                )
            )
        if node.returns is None:
            findings.append(
                Finding(
                    rule="typing-missing-annotation",
                    path=source.path,
                    line=node.lineno,
                    message=(
                        f"{node.name}() has no return annotation in a "
                        "strict-typed module"
                    ),
                )
            )
    return findings
