"""``repro lint``: AST-based invariant linter for the reproduction.

The repo's core value is *deterministic, byte-identical* simulation, and
several of its subsystems rely on structural invariants nothing used to
enforce: the compiled-kernel build only accepts a subset of Python, the
scenario registries must stay covered by the ``repro check`` audit, and
no handler module may reach into the event queue's internals.  This
package checks those invariants **statically**, the way the docstring
gate ratchets documentation:

* :mod:`repro.lint.determinism` -- no wall-clock reads, no ambient
  entropy, no module-level ``random``, no order-dependent set iteration
  in the simulation/summary packages;
* :mod:`repro.lint.purity` -- ``repro/sim/events.py`` +
  ``repro/sim/kernel.py`` stay inside the subset that
  ``tools/build_kernel_ext.py`` can concatenate and compile;
* :mod:`repro.lint.registry_rules` -- every scenario factory is audited
  by ``repro check`` or explicitly exempted; every memory backend and
  link model has a CLI surface and a test referencing it;
* :mod:`repro.lint.dispatch` -- no module outside the kernel touches
  ``EventQueue`` internals, and no handler package re-enters
  ``Simulator.run()`` from inside a dispatch callback;
* :mod:`repro.lint.typing_rules` -- the strict-typed module ratchet:
  every function in :data:`repro.lint.config.STRICT_TYPED_MODULES` is
  fully annotated (the AST half of the ``mypy --strict`` gate that
  ``tools/typecheck.py`` runs when mypy is installed).

Findings are suppressible per line (``# repro-lint: disable=<rule>``)
and grandfathered findings live in a committed baseline whose count may
only shrink (:mod:`repro.lint.baseline`).  The CLI surface is
``repro lint`` (:func:`repro.cli.cmd_lint`); the programmatic entry
point is :func:`repro.lint.runner.run_lint`.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.findings import Finding, SourceFile
from repro.lint.runner import LintReport, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "SourceFile",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
