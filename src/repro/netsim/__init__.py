"""Message-passing simulation substrate (related-work axis).

The paper's Section 1 situates its contribution against the
message-passing Omega literature: timer-based algorithms over
eventually-timely links (Aguilera et al. [2, 3], Larrea et al. [17])
and the time-free message-pattern approach (Mostefaoui et al. [21,
23]).  To make that comparison executable, this package provides the
network analogue of :mod:`repro.memory`:

* point-to-point channels with pluggable per-link delay behaviour,
  message loss, and the *eventually timely source* property of [2]
  (after some unknown time, one correct process's outgoing links
  deliver within a bound);
* an event-driven process runtime (handlers for messages and timers)
  -- message-passing algorithms are reactive, so they use handler
  style rather than the shared-memory package's step coroutines;
* full traffic accounting, mirroring the shared-memory access logs, so
  the same censuses (who sends forever, convergence times) apply.

Two subsystems build on top: :mod:`repro.related` (the related-work
Omega algorithms as :class:`MpProcess` subclasses) and
:mod:`repro.memory.emulated` (the ABD-style quorum emulation of the
paper's 1WMR registers, which turns every shared-memory algorithm in
the repo into a message-passing experiment).
"""

from repro.netsim.network import (
    ChannelBehavior,
    EventuallyTimelyLinks,
    FairLossyLinks,
    Message,
    Network,
    RampLinks,
    SourceChurnLinks,
    SynchronousLinks,
    TimelyLinks,
)
from repro.netsim.runtime import MpProcess, MpRun, MpRunResult

__all__ = [
    "ChannelBehavior",
    "EventuallyTimelyLinks",
    "FairLossyLinks",
    "Message",
    "MpProcess",
    "MpRun",
    "MpRunResult",
    "Network",
    "RampLinks",
    "SourceChurnLinks",
    "SynchronousLinks",
    "TimelyLinks",
]
