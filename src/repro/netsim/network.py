"""Point-to-point channels with pluggable timing and loss.

A channel behaviour answers one question per message: *when* does it
arrive (or ``None`` for a drop).  The shipped behaviours span the
assumptions the related work uses:

* :class:`SynchronousLinks` -- a deterministic fixed delay on every
  link (the reference model for backend-equivalence tests of the
  register emulation, :mod:`repro.memory.emulated`);
* :class:`TimelyLinks` -- always-bounded delays (synchronous control);
* :class:`RampLinks` -- delays decaying linearly to timely at a GST
  (the message-passing twin of the PR 2 ``GstRampDelay`` adversary);
* :class:`FairLossyLinks` -- arbitrary finite delays and probabilistic
  drops, but infinitely many messages get through (the fair-lossy
  channels of [2]);
* :class:`EventuallyTimelyLinks` -- the *eventual t-source* assumption
  of Aguilera et al. [2]: after an unknown ``gst``, messages **from a
  designated source set** are delivered within a bound; everything else
  stays fair-lossy;
* :class:`PartitionScheduleLinks` -- a *dynamic* overlay driven by a
  fault plan (:mod:`repro.faults`): scheduled partition windows sever
  an island of replicas from the rest of the world until they heal,
  and message-storm windows multiply every delay by a congestion
  factor.

Beyond timing and loss, a behaviour may implement the optional
``delivery_plan(message)`` hook to *mutate* traffic -- returning any
number of ``(delay, message)`` deliveries per send.  That is how the
mutating-fault adversaries work: :class:`CorruptingLinks` flips payload
values in flight and :class:`DuplicatingLinks` delivers some messages
twice (the ROADMAP's "Byzantine / mutating link faults" axis).

This mirrors how :mod:`repro.sim.schedulers` realizes AWB1: the
assumption lives in the environment model, not in the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, List, Optional, Protocol, Tuple

from repro.sim.events import EventLane
from repro.sim.rng import RngRegistry


@dataclass(frozen=True, slots=True)
class Message:
    """One message in flight."""

    sender: int
    receiver: int
    kind: str
    payload: Any
    sent_at: float


class ChannelBehavior(Protocol):
    """Decides the fate of each message."""

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Delay until delivery, or ``None`` when the message is lost."""
        ...


class SynchronousLinks:
    """Deterministic fixed one-way delay on every link, no loss.

    The strongest (and simplest) link model: every message arrives
    exactly ``delta`` after it is sent.  It draws no randomness at all,
    which makes it the reference model for backend-equivalence tests --
    a run whose registers are emulated over synchronous links consumes
    exactly the same random streams as a shared-memory run of the same
    seed, so the two must elect the same leader.
    """

    def __init__(self, delta: float = 0.25) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Always ``delta``; never a drop."""
        return self.delta


class RampLinks:
    """Link delays that shrink linearly until a GST, then stay timely.

    The message-passing twin of
    :class:`repro.sim.schedulers.GstRampDelay` (the PR 2 adversary):
    instead of asynchrony switching off at an unknown global
    stabilization time, the delay scale decays *gradually* from
    ``start_scale``x down to 1x at ``gst`` -- a moving target for any
    protocol phase that must collect a quorum.  From ``gst`` on, every
    link is timely in ``[lo, hi]``.
    """

    def __init__(
        self,
        rng: RngRegistry,
        gst: float,
        start_scale: float = 8.0,
        lo: float = 0.5,
        hi: float = 2.0,
    ) -> None:
        if not 0 < lo <= hi:
            raise ValueError("need 0 < lo <= hi")
        if gst < 0 or start_scale < 1.0:
            raise ValueError("need gst >= 0 and start_scale >= 1")
        self.gst = gst
        self.start_scale = start_scale
        self.lo, self.hi = lo, hi
        self._rng = rng

    def scale_at(self, time: float) -> float:
        """The delay multiplier in effect at ``time`` (1.0 from gst on)."""
        if self.gst <= 0 or time >= self.gst:
            return 1.0
        frac = time / self.gst
        return self.start_scale + (1.0 - self.start_scale) * frac

    def delivery_delay(self, message: Message) -> Optional[float]:
        """A timely draw scaled by the ramp at the send instant."""
        stream = self._rng.stream(f"link:{message.sender}->{message.receiver}")
        return stream.uniform(self.lo, self.hi) * self.scale_at(message.sent_at)


class TimelyLinks:
    """Uniformly bounded delays on every link, no loss."""

    def __init__(self, rng: RngRegistry, lo: float = 0.5, hi: float = 2.0) -> None:
        if not 0 < lo <= hi:
            raise ValueError("need 0 < lo <= hi")
        self.lo, self.hi = lo, hi
        self._rng = rng

    def delivery_delay(self, message: Message) -> Optional[float]:
        """A uniform draw in ``[lo, hi]``; never a drop."""
        stream = self._rng.stream(f"link:{message.sender}->{message.receiver}")
        return stream.uniform(self.lo, self.hi)


class FairLossyLinks:
    """Arbitrary finite delays, probabilistic loss.

    Fair-lossy in the [2] sense: each message is independently dropped
    with ``loss`` < 1, so infinitely many of an infinite send sequence
    get through.  ``cap`` keeps delays finite for the simulation
    horizon without bounding them meaningfully.
    """

    def __init__(
        self,
        rng: RngRegistry,
        loss: float = 0.2,
        lo: float = 0.5,
        hi: float = 30.0,
        cap: float = 80.0,
    ) -> None:
        if not 0 <= loss < 1:
            raise ValueError("loss must be in [0, 1)")
        if not 0 < lo <= hi <= cap:
            raise ValueError("need 0 < lo <= hi <= cap")
        self.loss, self.lo, self.hi, self.cap = loss, lo, hi, cap
        self._rng = rng

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Drop with probability ``loss``; otherwise an arbitrary finite delay."""
        stream = self._rng.stream(f"link:{message.sender}->{message.receiver}")
        if stream.random() < self.loss:
            return None
        # Occasionally spike toward the cap: "arbitrary but finite".
        if stream.random() < 0.1:
            return stream.uniform(self.hi, self.cap)
        return stream.uniform(self.lo, self.hi)


class EventuallyTimelyLinks:
    """The eventual t-source assumption of [2].

    Messages from a pid in ``sources`` sent at or after ``gst`` are
    delivered within ``[timely_lo, timely_hi]`` and never lost; all
    other traffic follows ``base`` (typically fair-lossy).
    """

    def __init__(
        self,
        base: ChannelBehavior,
        sources: Iterable[int],
        gst: float,
        rng: RngRegistry,
        timely_lo: float = 0.5,
        timely_hi: float = 2.0,
    ) -> None:
        if not 0 < timely_lo <= timely_hi:
            raise ValueError("need 0 < timely_lo <= timely_hi")
        self.base = base
        self.sources = frozenset(sources)
        self.gst = gst
        self.timely_lo, self.timely_hi = timely_lo, timely_hi
        self._rng = rng

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Timely for post-gst source traffic; ``base`` for everything else."""
        if message.sender in self.sources and message.sent_at >= self.gst:
            stream = self._rng.stream(f"timely:{message.sender}->{message.receiver}")
            return stream.uniform(self.timely_lo, self.timely_hi)
        return self.base.delivery_delay(message)


class SourceChurnLinks:
    """Eventual t-source with *source-set churn*.

    Before ``gst`` the set of timely senders rotates: during epoch ``e``
    (of length ``epoch``) the window ``rotation[e % len(rotation)]`` is
    timely and everything else follows ``base``.  From ``gst`` on the
    behaviour is exactly :class:`EventuallyTimelyLinks` with the final
    ``sources`` set.  This is the adversarial reading of the [2]
    assumption: "there is a time after which some set of sources is
    timely" permits the candidate set to churn arbitrarily long first,
    and an algorithm leaning on early winners must survive every
    reshuffle.
    """

    def __init__(
        self,
        base: ChannelBehavior,
        sources: Iterable[int],
        gst: float,
        rng: RngRegistry,
        rotation: Optional[Iterable[Iterable[int]]] = None,
        epoch: float = 100.0,
        timely_lo: float = 0.5,
        timely_hi: float = 2.0,
    ) -> None:
        if not 0 < timely_lo <= timely_hi:
            raise ValueError("need 0 < timely_lo <= timely_hi")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.base = base
        self.sources = frozenset(sources)
        self.gst = gst
        self.epoch = epoch
        self.rotation = [frozenset(window) for window in (rotation or [])]
        self.timely_lo, self.timely_hi = timely_lo, timely_hi
        self._rng = rng

    def sources_at(self, time: float) -> frozenset:
        """The timely source set in effect at ``time``."""
        if time >= self.gst or not self.rotation:
            return self.sources
        return self.rotation[int(time // self.epoch) % len(self.rotation)]

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Timely for the epoch's rotating source set; ``base`` otherwise."""
        if message.sender in self.sources_at(message.sent_at):
            stream = self._rng.stream(f"timely:{message.sender}->{message.receiver}")
            return stream.uniform(self.timely_lo, self.timely_hi)
        return self.base.delivery_delay(message)


def _corrupt_value(value: Any, stream: Any) -> Any:
    """A *different* value of the same shape (bool flip, int jitter)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + stream.randrange(1, 6)
    return value


class CorruptingLinks:
    """Mutating-fault adversary: values are occasionally corrupted in flight.

    Timing delegates to ``base``; with probability ``rate`` the trailing
    payload field is replaced by a *different* value of the same type
    (bools flip, ints jitter upward) before delivery.  Only messages
    whose payload is a tuple ending in an int/bool are eligible -- for
    the ABD register emulation that is exactly the value-carrying
    ``abd.write`` and ``abd.read-reply`` traffic, while op-ids, register
    names and timestamps stay intact.  This is the fault class a correct
    crash-stop emulation does **not** tolerate: the Theorem 1 audit is
    expected to *fail* under it (the negative-scenario family), unlike
    under :class:`DuplicatingLinks`.
    """

    def __init__(self, base: ChannelBehavior, rng: RngRegistry, rate: float = 0.1) -> None:
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self.base = base
        self.rate = rate
        self._rng = rng
        self.corrupted = 0

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Timing is the base model's; corruption never drops."""
        return self.base.delivery_delay(message)

    def delivery_plan(self, message: Message) -> List[Tuple[Optional[float], Message]]:
        """One delivery, payload possibly corrupted."""
        delay = self.base.delivery_delay(message)
        payload = message.payload
        if (
            delay is not None
            and isinstance(payload, tuple)
            and payload
            and isinstance(payload[-1], (bool, int))
        ):
            stream = self._rng.stream(f"corrupt:{message.sender}->{message.receiver}")
            if stream.random() < self.rate:
                self.corrupted += 1
                mutated = payload[:-1] + (_corrupt_value(payload[-1], stream),)
                message = replace(message, payload=mutated)
        return [(delay, message)]


class DuplicatingLinks:
    """Mutating-fault adversary: some messages are delivered twice.

    Timing delegates to ``base``; with probability ``rate`` a second,
    later copy of the message is delivered as well.  Quorum protocols
    built on idempotent, timestamp-monotone application (the ABD
    emulation) must absorb duplicates without any effect -- the positive
    twin of :class:`CorruptingLinks` in the mutating-fault family.
    """

    def __init__(
        self,
        base: ChannelBehavior,
        rng: RngRegistry,
        rate: float = 0.2,
        lag: float = 1.0,
    ) -> None:
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        if lag <= 0:
            raise ValueError("lag must be positive")
        self.base = base
        self.rate = rate
        self.lag = lag
        self._rng = rng
        self.duplicated = 0

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Timing is the base model's; duplication never drops."""
        return self.base.delivery_delay(message)

    def delivery_plan(self, message: Message) -> List[Tuple[Optional[float], Message]]:
        """The base delivery, plus an occasional delayed duplicate."""
        delay = self.base.delivery_delay(message)
        fates: List[Tuple[Optional[float], Message]] = [(delay, message)]
        if delay is not None:
            stream = self._rng.stream(f"dup:{message.sender}->{message.receiver}")
            if stream.random() < self.rate:
                self.duplicated += 1
                fates.append((delay + self.lag, message))
        return fates


class PartitionScheduleLinks:
    """Dynamic partitions and congestion storms over a base model.

    The link-level half of the fault-injection subsystem
    (:mod:`repro.faults`): ``partitions`` is a schedule of
    ``(start, end, island)`` windows during which the *island* -- a set
    of replica indices (wire address ``-(index + 1)``) -- is cut off
    from everything outside it, and ``storms`` is a schedule of
    ``(start, end, factor)`` windows during which every delivery delay
    is multiplied by ``factor`` (congestion, not loss).  Both are
    judged at the send instant, like :class:`RampLinks` judges its
    ramp.  Timing outside any window delegates to ``base`` unchanged,
    so an empty schedule is behaviourally identical to ``base``.

    Client processes (non-negative pids) always sit on the majority
    side: a message is dropped exactly when one endpoint is inside an
    active island and the other is not.
    """

    def __init__(
        self,
        base: ChannelBehavior,
        partitions: Iterable[Tuple[float, float, Iterable[int]]] = (),
        storms: Iterable[Tuple[float, float, float]] = (),
    ) -> None:
        self.base = base
        self.partitions: Tuple[Tuple[float, float, frozenset], ...] = tuple(
            (float(start), float(end), frozenset(int(i) for i in island))
            for start, end, island in partitions
        )
        self.storms: Tuple[Tuple[float, float, float], ...] = tuple(
            (float(start), float(end), float(factor)) for start, end, factor in storms
        )
        for start, end, island in self.partitions:
            if not island or end <= start:
                raise ValueError("partition windows need end > start and a non-empty island")
        for start, end, factor in self.storms:
            if end <= start or factor < 1.0:
                raise ValueError("storm windows need end > start and factor >= 1")
        self.partitioned_drops = 0

    @staticmethod
    def _replica_index(node_id: int) -> Optional[int]:
        """Wire address -> replica index (clients map to ``None``)."""
        return -node_id - 1 if node_id < 0 else None

    def severed(self, message: Message) -> bool:
        """True when an active island separates sender from receiver."""
        t = message.sent_at
        s = self._replica_index(message.sender)
        r = self._replica_index(message.receiver)
        for start, end, island in self.partitions:
            if start <= t < end and (s in island) != (r in island):
                return True
        return False

    def storm_factor(self, time: float) -> float:
        """The combined delay multiplier of the storms active at ``time``."""
        factor = 1.0
        for start, end, storm in self.storms:
            if start <= time < end:
                factor *= storm
        return factor

    def delivery_delay(self, message: Message) -> Optional[float]:
        """Drop across an active island; otherwise storm-scaled base delay."""
        if self.severed(message):
            self.partitioned_drops += 1
            return None
        delay = self.base.delivery_delay(message)
        if delay is None:
            return None
        return delay * self.storm_factor(message.sent_at)


class Network:
    """The message fabric: send, count, deliver through the kernel.

    Delivery callbacks are installed by :class:`~repro.netsim.runtime.MpRun`;
    the network itself only decides timing/loss and keeps the traffic
    accounting (sent/delivered/dropped per pid).
    """

    def __init__(self, sim: Any, behavior: ChannelBehavior) -> None:
        self._sim = sim
        self.behavior = behavior
        self.sent_by_pid: dict[int, int] = {}
        self.delivered: int = 0
        self.dropped: int = 0
        self._deliver_cb = None  # type: ignore[assignment]
        # Message deliveries are the highest-volume event kind, so they
        # ride a columnar kernel lane: the in-flight Message *is* the
        # lane payload -- no per-delivery closure allocation.
        self._lane = EventLane("message", self._fire_delivery)

    def install_delivery(self, callback) -> None:
        """Set the ``callback(message)`` invoked at each delivery."""
        self._deliver_cb = callback

    def _fire_delivery(self, message: Message) -> None:
        """Lane consumer: count and hand the message to the runtime."""
        self.delivered += 1
        assert self._deliver_cb is not None
        self._deliver_cb(message)

    def send(self, sender: int, receiver: int, kind: str, payload: Any) -> None:
        """Send one message; the channel decides its fate.

        A behaviour with the optional ``delivery_plan`` hook may return
        any number of ``(delay, message)`` deliveries per send (mutated
        payloads, duplicates); plain behaviours yield exactly one fate
        via ``delivery_delay``.
        """
        message = Message(sender, receiver, kind, payload, self._sim.now)
        self.sent_by_pid[sender] = self.sent_by_pid.get(sender, 0) + 1
        plan = getattr(self.behavior, "delivery_plan", None)
        if plan is not None:
            fates = plan(message)
        else:
            fates = [(self.behavior.delivery_delay(message), message)]
        for delay, fated in fates:
            if delay is None:
                self.dropped += 1
                continue
            if delay <= 0:
                raise ValueError("channel behaviour produced non-positive delay")
            self._sim.schedule_lane_after(self._lane, delay, fated, pid=receiver)

    def broadcast(self, sender: int, n: int, kind: str, payload: Any) -> None:
        """Send to every process except the sender."""
        for receiver in range(n):
            if receiver != sender:
                self.send(sender, receiver, kind, payload)

    @property
    def total_sent(self) -> int:
        """Messages handed to the network across all senders."""
        return sum(self.sent_by_pid.values())


__all__ = [
    "ChannelBehavior",
    "CorruptingLinks",
    "DuplicatingLinks",
    "EventuallyTimelyLinks",
    "FairLossyLinks",
    "Message",
    "Network",
    "PartitionScheduleLinks",
    "RampLinks",
    "SourceChurnLinks",
    "SynchronousLinks",
    "TimelyLinks",
]
