"""Event-driven runtime for message-passing processes.

Message-passing Omega algorithms are reactive (handle a message, handle
a timeout), so the runtime dispatches handler callbacks rather than
stepping operation coroutines.  Local handler execution is modelled as
instantaneous: in the related-work algorithms all the asynchrony that
matters lives in the *channels* (that is precisely the [2] model, where
process speeds are benign and links carry the timing assumption).

Crash-stop semantics, observer sampling and determinism mirror the
shared-memory runner, so the same analysis code consumes both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Type

from repro.netsim.network import ChannelBehavior, Message, Network, TimelyLinks
from repro.sim.crash import CrashPlan
from repro.sim.events import EventLane
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import RunTrace


class MpProcess(abc.ABC):
    """Base class for message-passing processes.

    Subclasses implement the three handlers and :meth:`peek_leader`.
    The runtime injects :attr:`send`, :attr:`broadcast` and
    :attr:`set_timer` before :meth:`on_start` runs.
    """

    display_name: str = "mp-process"

    def __init__(self, pid: int, n: int, config: Dict[str, Any]) -> None:
        self.pid = pid
        self.n = n
        self.config = config
        self._run: Optional["MpRun"] = None

    # -- wiring (installed by the runtime) -------------------------------
    def send(self, receiver: int, kind: str, payload: Any = None) -> None:
        """Send one message."""
        assert self._run is not None
        self._run.network.send(self.pid, receiver, kind, payload)

    def broadcast(self, kind: str, payload: Any = None) -> None:
        """Send to all other processes."""
        assert self._run is not None
        self._run.network.broadcast(self.pid, self.n, kind, payload)

    def set_timer(self, tag: str, delay: float) -> None:
        """(Re-)arm the named local timer."""
        assert self._run is not None
        self._run.set_timer(self.pid, tag, delay)

    # -- handlers ---------------------------------------------------------
    def on_start(self) -> None:
        """Called once at time 0."""

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Called at each delivery addressed to this process."""

    def on_timer(self, tag: str) -> None:
        """Called when the named timer expires."""

    @abc.abstractmethod
    def peek_leader(self) -> int:
        """Observer ``leader()`` output."""


@dataclass
class MpRunResult:
    """Outcome bundle of a message-passing run."""

    algorithm_name: str
    n: int
    horizon: float
    seed: int
    trace: RunTrace
    network: Network
    sim: Simulator
    crash_plan: CrashPlan
    processes: List[MpProcess]

    def stabilization(self, margin: float = 0.0) -> Any:
        """Eventual-leadership verdict (see :mod:`repro.analysis.omega_props`)."""
        from repro.analysis.omega_props import check_eventual_leadership

        return check_eventual_leadership(self.trace, self.crash_plan, self.horizon, margin=margin)


class MpRun:
    """Assemble and execute a message-passing run."""

    def __init__(
        self,
        process_cls: Type[MpProcess],
        n: int,
        *,
        seed: int = 0,
        horizon: float = 2000.0,
        behavior: Optional[ChannelBehavior] = None,
        crash_plan: Optional[CrashPlan] = None,
        sample_interval: float = 5.0,
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two processes")
        self.n = n
        self.seed = seed
        self.horizon = horizon
        self.rng = RngRegistry(seed)
        self.sim = Simulator()
        self.network = Network(self.sim, behavior or TimelyLinks(self.rng))
        self.crash_plan = crash_plan or CrashPlan.none(n)
        self.sample_interval = sample_interval
        self.trace = RunTrace()
        cfg = dict(config or {})
        self.processes = [process_cls(pid, n, cfg) for pid in range(n)]
        for proc in self.processes:
            proc._run = self
        self._crashed = [False] * n
        self._timers: Dict[tuple[int, str], int] = {}
        # Named timers share one columnar lane; the payload is the
        # ``(pid, tag)`` key and the token in ``_timers`` both probes
        # and cancels (see EventLane).
        self._timer_lane = EventLane("mp-timer", self._fire_timer)
        self.network.install_delivery(self._deliver)

    # ------------------------------------------------------------------
    def set_timer(self, pid: int, tag: str, delay: float) -> None:
        """(Re-)arm one process's named timer (cancels the previous one)."""
        if delay <= 0:
            raise ValueError("timer delay must be positive")
        key = (pid, tag)
        lane = self._timer_lane
        previous = self._timers.get(key)
        if previous is not None:
            lane.cancel(previous)
        self._timers[key] = self.sim.schedule_lane_after(lane, delay, key, pid=pid)

    def _fire_timer(self, key: tuple[int, str]) -> None:
        pid, tag = key
        if not self._crashed[pid]:
            self.processes[pid].on_timer(tag)

    def _deliver(self, message: Message) -> None:
        if not self._crashed[message.receiver]:
            self.processes[message.receiver].on_message(message)

    def _install_crashes(self) -> None:
        for pid in range(self.n):
            t = self.crash_plan.crash_time(pid)
            if t <= self.horizon:

                def crash(p: int = pid, when: float = t) -> None:
                    self._crashed[p] = True
                    self.trace.record(when, "crash", pid=p)

                self.sim.schedule_at(t, crash, kind="crash", pid=pid)

    def _sample(self) -> None:
        now = self.sim.now
        for pid, proc in enumerate(self.processes):
            if not self._crashed[pid]:
                self.trace.record_leader_sample(now, pid, proc.peek_leader())
        nxt = now + self.sample_interval
        if nxt <= self.horizon:
            self.sim.schedule_at(nxt, self._sample, kind="sample")

    # ------------------------------------------------------------------
    def execute(self) -> MpRunResult:
        """Run to the horizon and return the result bundle."""
        self._install_crashes()
        for pid, proc in enumerate(self.processes):
            if not self.crash_plan.is_crashed(pid, 0.0):
                proc.on_start()
        self.sim.schedule_at(0.0, self._sample, kind="sample")
        # Top-level run driver (execute() is called from outside the
        # simulator), not a dispatch callback.
        self.sim.run(until=self.horizon)  # repro-lint: disable=dispatch-reentrant-run
        for pid, proc in enumerate(self.processes):
            if not self._crashed[pid]:
                self.trace.record_leader_sample(self.horizon, pid, proc.peek_leader())
        return MpRunResult(
            algorithm_name=type(self.processes[0]).display_name,
            n=self.n,
            horizon=self.horizon,
            seed=self.seed,
            trace=self.trace,
            network=self.network,
            sim=self.sim,
            crash_plan=self.crash_plan,
            processes=self.processes,
        )


__all__ = ["MpProcess", "MpRun", "MpRunResult"]
