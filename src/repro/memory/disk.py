"""Network-attached-disk model: shared memory with operation latency.

The paper motivates shared-memory Omega with storage-area networks:
"some distributed systems are made up of computers that communicate
through a network of attached disks ... that implements a shared memory
abstraction" (Section 1).  On such hardware a register operation is not
instantaneous: it has an *invocation*, takes effect at some hidden
*linearization point*, and later *responds*.

:class:`Disk` supplies the latency behaviour and keeps the interval
history; the runner (see :mod:`repro.core.runner`) blocks a process for
the full latency and applies the register operation at the sampled
linearization point.  The recorded history is validated by
:mod:`repro.memory.linearizability`, so the SAN experiments double as a
test that the substrate really provides atomic registers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.rng import RngRegistry


@dataclass(frozen=True, slots=True)
class DiskOpRecord:
    """One completed disk operation with its interval and hidden witness.

    ``version`` is the write sequence number of the value involved: for
    a write, the version it created; for a read, the version it
    returned.  Versions exist only inside the disk model (algorithm
    values like booleans repeat, so raw values cannot identify writes).
    ``lin`` is the hidden linearization witness -- the checker must *not*
    use it (it reconstructs validity from intervals alone); tests use it
    to cross-check the checker.
    """

    op_id: int
    kind: str  # "read" | "write"
    pid: int
    register: str
    version: int
    inv: float
    lin: float
    resp: float


@dataclass(frozen=True, slots=True)
class LatencySample:
    """Sampled timing of one disk access, as offsets from invocation."""

    lin_offset: float
    resp_offset: float


class LatencyModel:
    """Uniform access latency in ``[lo, hi]`` with a uniform
    linearization point inside the interval."""

    def __init__(self, rng: RngRegistry, lo: float = 1.0, hi: float = 5.0) -> None:
        if not (0 < lo <= hi):
            raise ValueError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi
        self._rng = rng

    def sample(self, pid: int) -> LatencySample:
        """Draw one operation's (linearization, response) offsets."""
        stream = self._rng.stream(f"disk:{pid}")
        total = stream.uniform(self.lo, self.hi)
        lin = stream.uniform(0.0, total)
        return LatencySample(lin_offset=lin, resp_offset=total)


class Disk:
    """A network-attached disk fronting a set of registers.

    The disk does not store values itself -- registers stay in
    :class:`~repro.memory.memory.SharedMemory` so all the accounting
    keeps working; the disk adds latency, version bookkeeping and the
    interval history.
    """

    def __init__(self, latency: LatencyModel, name: str = "disk0") -> None:
        self.name = name
        self.latency = latency
        self.history: List[DiskOpRecord] = []
        self._op_ids = itertools.count()
        self._versions: dict[str, int] = {}
        self._read_versions: dict[str, int] = {}

    def sample(self, pid: int) -> LatencySample:
        """Sample latency offsets for one access by ``pid``."""
        return self.latency.sample(pid)

    # ------------------------------------------------------------------
    # History bookkeeping (called by the runner at linearization time)
    # ------------------------------------------------------------------
    def note_write(self, pid: int, register: str, inv: float, lin: float, resp: float) -> int:
        """Record a write; returns the version it created."""
        version = self._versions.get(register, -1) + 1
        self._versions[register] = version
        self._read_versions[register] = version
        self.history.append(
            DiskOpRecord(
                op_id=next(self._op_ids),
                kind="write",
                pid=pid,
                register=register,
                version=version,
                inv=inv,
                lin=lin,
                resp=resp,
            )
        )
        return version

    def note_read(self, pid: int, register: str, inv: float, lin: float, resp: float) -> int:
        """Record a read; returns the version it observed."""
        version = self._read_versions.get(register, -1)
        self.history.append(
            DiskOpRecord(
                op_id=next(self._op_ids),
                kind="read",
                pid=pid,
                register=register,
                version=version,
                inv=inv,
                lin=lin,
                resp=resp,
            )
        )
        return version

    def ops_for(self, register: str) -> List[DiskOpRecord]:
        """All recorded operations on one register, in op-id order."""
        return [rec for rec in self.history if rec.register == register]


__all__ = ["Disk", "DiskOpRecord", "LatencyModel", "LatencySample"]
