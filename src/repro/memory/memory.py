"""The shared-memory namespace and its access statistics.

Besides owning every register of a run, :class:`SharedMemory` records an
append-only access log.  The log is what turns the paper's theorems into
checkable statements:

* *Theorem 3* ("after some time only the leader writes, always the same
  variable") becomes a query over the tail of the write log;
* *Theorem 2 / Theorem 6* (boundedness) become growth verdicts over the
  per-register value history;
* *Lemma 6* (everyone else reads forever) becomes a query over the read
  log;
* *Theorem 5*'s bounded-memory adversary needs global state snapshots to
  detect recurring memory states -- :meth:`SharedMemory.snapshot`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister


class AccessKind(str, Enum):
    """Kind of shared-memory access."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class WriteRecord:
    """One write: when, by whom, to which register, what value."""

    time: float
    pid: int
    register: str
    value: Any
    critical: bool


@dataclass(frozen=True, slots=True)
class ReadRecord:
    """One read: when, by whom, from which register."""

    time: float
    pid: int
    register: str


class SharedMemory:
    """Namespace of registers plus the run's access log.

    Parameters
    ----------
    clock:
        Zero-argument callable returning current virtual time -- usually
        ``simulator.now`` via ``lambda: sim.now`` or the bound property.
    log_reads:
        Whether to keep the full read log.  Reads vastly outnumber
        writes (every ``leader()`` invocation reads up to ``n^2``
        registers), so long benches may disable it; aggregate per-pid
        read counters are always maintained.
    """

    def __init__(self, clock: Callable[[], float], log_reads: bool = True) -> None:
        self._clock = clock
        self._registers: Dict[str, AtomicRegister] = {}
        self._mwmr: Dict[str, MultiWriterRegister] = {}
        self.log_reads = log_reads

        self.write_log: List[WriteRecord] = []
        self.read_log: List[ReadRecord] = []
        self._write_times: List[float] = []  # parallel to write_log, for bisect
        self._read_times: List[float] = []

        self.reads_by_pid: Dict[int, int] = {}
        self.writes_by_pid: Dict[int, int] = {}
        self.last_read_time_by_pid: Dict[int, float] = {}
        self.last_write_time_by_pid: Dict[int, float] = {}

        # Reads vastly outnumber every other access; pick the read hook
        # once instead of testing ``log_reads`` on every call.  The
        # instance attribute shadows the class methods for the registers'
        # ``memory._note_read(...)`` calls.
        self._note_read = self._note_read_logged if log_reads else self._note_read_fast

    # ------------------------------------------------------------------
    # Construction of registers
    # ------------------------------------------------------------------
    def create_register(
        self,
        name: str,
        owner: Optional[int],
        initial: Any = 0,
        critical: bool = False,
    ) -> AtomicRegister:
        """Create and register a named 1WnR register."""
        if name in self._registers or name in self._mwmr:
            raise ValueError(f"register {name!r} already exists")
        reg = AtomicRegister(name, owner=owner, initial=initial, critical=critical, memory=self)
        self._registers[name] = reg
        return reg

    def create_array(
        self,
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int], int]] = None,
    ) -> RegisterArray:
        """Create a named array of 1WnR registers."""
        return RegisterArray(self, name, n, initial=initial, critical=critical, owner_of=owner_of)

    def create_matrix(
        self,
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int, int], int]] = None,
    ) -> RegisterMatrix:
        """Create a named matrix of 1WnR registers."""
        return RegisterMatrix(self, name, n, initial=initial, critical=critical, owner_of=owner_of)

    def create_mwmr(self, name: str, initial: Any = 0, critical: bool = False) -> MultiWriterRegister:
        """Create a multi-writer register (Section 3.5 variant)."""
        if name in self._registers or name in self._mwmr:
            raise ValueError(f"register {name!r} already exists")
        reg = MultiWriterRegister(name, initial=initial, critical=critical, memory=self)
        self._mwmr[name] = reg
        return reg

    def register(self, name: str) -> AtomicRegister:
        """Look up a 1WnR register by name."""
        return self._registers[name]

    def names(self) -> List[str]:
        """All register names (1WnR and multi-writer), sorted."""
        return sorted(list(self._registers) + list(self._mwmr))

    def all_registers(self) -> List[Any]:
        """Every register object (1WnR then multi-writer), name-sorted.

        Used by scenario setup (initial-value scrambling) and observers;
        algorithms never call this.
        """
        regs: List[Any] = [self._registers[name] for name in sorted(self._registers)]
        regs.extend(self._mwmr[name] for name in sorted(self._mwmr))
        return regs

    # ------------------------------------------------------------------
    # Accounting hooks (called by registers)
    # ------------------------------------------------------------------
    def _note_read_logged(self, name: str, pid: int) -> None:
        now = self._clock()
        reads = self.reads_by_pid
        reads[pid] = reads.get(pid, 0) + 1
        self.last_read_time_by_pid[pid] = now
        self.read_log.append(ReadRecord(now, pid, name))
        self._read_times.append(now)

    def _note_read_fast(self, name: str, pid: int) -> None:
        """The low-overhead mode: aggregate counters only, no log."""
        reads = self.reads_by_pid
        reads[pid] = reads.get(pid, 0) + 1
        self.last_read_time_by_pid[pid] = self._clock()

    def _note_write(self, name: str, pid: int, value: Any, critical: bool) -> None:
        now = self._clock()
        self.writes_by_pid[pid] = self.writes_by_pid.get(pid, 0) + 1
        self.last_write_time_by_pid[pid] = now
        self.write_log.append(WriteRecord(now, pid, name, value, critical))
        self._write_times.append(now)

    # ------------------------------------------------------------------
    # Window queries (all intervals are half-open [t0, t1))
    # ------------------------------------------------------------------
    def writes_in(self, t0: float, t1: float) -> List[WriteRecord]:
        """Write records with ``t0 <= time < t1``."""
        lo = bisect.bisect_left(self._write_times, t0)
        hi = bisect.bisect_left(self._write_times, t1)
        return self.write_log[lo:hi]

    def reads_in(self, t0: float, t1: float) -> List[ReadRecord]:
        """Read records with ``t0 <= time < t1`` (needs ``log_reads``)."""
        if not self.log_reads:
            raise RuntimeError("read logging is disabled for this run")
        lo = bisect.bisect_left(self._read_times, t0)
        hi = bisect.bisect_left(self._read_times, t1)
        return self.read_log[lo:hi]

    def writers_in(self, t0: float, t1: float) -> FrozenSet[int]:
        """Pids that wrote at least once in ``[t0, t1)``."""
        return frozenset(rec.pid for rec in self.writes_in(t0, t1))

    def readers_in(self, t0: float, t1: float) -> FrozenSet[int]:
        """Pids that read at least once in ``[t0, t1)``."""
        return frozenset(rec.pid for rec in self.reads_in(t0, t1))

    def registers_written_in(self, t0: float, t1: float) -> FrozenSet[str]:
        """Names of registers written in ``[t0, t1)``."""
        return frozenset(rec.register for rec in self.writes_in(t0, t1))

    # ------------------------------------------------------------------
    # Per-register value history and growth
    # ------------------------------------------------------------------
    def value_history(self, name: str) -> List[Tuple[float, Any]]:
        """The ``(time, value)`` sequence written to a register."""
        return [(rec.time, rec.value) for rec in self.write_log if rec.register == name]

    def distinct_values_written(self, name: str) -> Set[Any]:
        """Set of distinct values ever written to a register."""
        return {rec.value for rec in self.write_log if rec.register == name}

    def max_numeric_value(self, name: str) -> Optional[float]:
        """Largest numeric value ever written (``None`` if never written
        or non-numeric)."""
        best: Optional[float] = None
        for rec in self.write_log:
            if rec.register == name and isinstance(rec.value, (int, float)) and not isinstance(rec.value, bool):
                v = float(rec.value)
                best = v if best is None or v > best else best
        return best

    def critical_write_times(self, pid: int) -> List[float]:
        """Times of ``pid``'s writes to *critical* registers.

        Consecutive gaps in this list are exactly the quantity AWB1
        bounds after tau_1 -- the Figure 3 experiment plots them.
        """
        return [rec.time for rec in self.write_log if rec.pid == pid and rec.critical]

    # ------------------------------------------------------------------
    # Global state (Theorem 5 harness)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Tuple[str, Any], ...]:
        """Hashable snapshot of the full shared-memory state.

        With bounded registers the state space is finite, so snapshots
        must eventually recur (pigeonhole) -- the ingredient of the
        Theorem 5 adversary.  Values must be hashable (they are: ints
        and bools in every algorithm here).
        """
        items: List[Tuple[str, Any]] = []
        for name in sorted(self._registers):
            items.append((name, self._registers[name].peek()))
        for name in sorted(self._mwmr):
            items.append((name, self._mwmr[name].peek()))
        return tuple(items)

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """Counted reads across all processes."""
        return sum(self.reads_by_pid.values())

    @property
    def total_writes(self) -> int:
        """Counted writes across all processes."""
        return sum(self.writes_by_pid.values())


__all__ = ["AccessKind", "ReadRecord", "SharedMemory", "WriteRecord"]
