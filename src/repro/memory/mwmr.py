"""Multi-writer/multi-reader atomic registers (Section 3.5 variant).

The paper notes that with nWnR atomic registers "each column
``SUSPICIONS[.][j]`` can be replaced by a single ``SUSPICIONS[j]``",
turning the matrix into a vector.  Plain read/write nWnR registers
would let two concurrent increments race (read-modify-write is not
atomic); to keep the variant's suspicion counters exact we also expose
``fetch_add``, modelling a fetch&add object.  The variant additionally
works with the racy two-step increment -- a scenario knob covered by
tests -- because lost increments only *slow* suspicion growth, never
unbound the AWB1 process's count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.memory import SharedMemory


class MultiWriterRegister:
    """An atomic nWnR register (any process may write).

    Operations linearize at the instant they are applied, like
    :class:`~repro.memory.register.AtomicRegister`.
    """

    __slots__ = ("name", "critical", "_value", "_memory")

    def __init__(
        self,
        name: str,
        initial: Any = 0,
        critical: bool = False,
        memory: Optional["SharedMemory"] = None,
    ) -> None:
        self.name = name
        self.critical = critical
        self._value = initial
        self._memory = memory

    def read(self, reader: int) -> Any:
        """Atomically read the register (counted)."""
        if self._memory is not None:
            self._memory._note_read(self.name, reader)
        return self._value

    def write(self, writer: int, value: Any) -> None:
        """Atomically write the register (counted); any writer allowed."""
        self._value = value
        if self._memory is not None:
            self._memory._note_write(self.name, writer, value, critical=self.critical)

    def fetch_add(self, writer: int, amount: int = 1) -> int:
        """Atomic read-modify-write increment; returns the *old* value.

        Counted as one read plus one write (the operation touches memory
        once but both directions of the access matter for the
        forever-reader/forever-writer censuses).
        """
        old = self._value
        self._value = old + amount
        if self._memory is not None:
            self._memory._note_read(self.name, writer)
            self._memory._note_write(self.name, writer, self._value, critical=self.critical)
        return old

    def peek(self) -> Any:
        """Observer read (uncounted)."""
        return self._value

    def poke(self, value: Any) -> None:
        """Observer write (uncounted) -- scenario setup only."""
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiWriterRegister({self.name!r}, value={self._value!r})"


__all__ = ["MultiWriterRegister"]
