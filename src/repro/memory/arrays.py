"""Register arrays and matrices with per-entry ownership.

The algorithms' shared state is naturally array-shaped:

* ``PROGRESS[n]``      -- entry ``i`` owned by ``p_i``           (Algorithm 1)
* ``STOP[n]``          -- entry ``i`` owned by ``p_i``           (both)
* ``SUSPICIONS[n][n]`` -- row ``j`` owned by ``p_j``             (both)
* ``PROGRESS[n][n]``   -- row ``i`` owned by ``p_i``             (Algorithm 2)
* ``LAST[n][n]``       -- entry ``(i, k)`` owned by ``p_k``      (Algorithm 2)

Note the last one: ``LAST`` is *column*-owned -- the hand-shake partner,
not the row process, writes it.  Ownership is therefore a function of
the index, supplied at construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.memory.register import AtomicRegister

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.memory import SharedMemory


class RegisterArray:
    """A fixed-length array of 1WnR registers, one per index.

    Parameters
    ----------
    owner_of:
        Maps index to owning pid.  Defaults to identity (entry ``i``
        owned by ``p_i``), which covers ``PROGRESS`` and ``STOP``.
    """

    def __init__(
        self,
        memory: Optional["SharedMemory"],
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("array length must be positive")
        self.name = name
        self.n = n
        owner_fn = owner_of or (lambda i: i)
        self._regs: List[AtomicRegister] = []
        for i in range(n):
            reg_name = f"{name}[{i}]"
            if memory is not None:
                reg = memory.create_register(
                    reg_name, owner=owner_fn(i), initial=initial, critical=critical
                )
            else:
                reg = AtomicRegister(reg_name, owner=owner_fn(i), initial=initial, critical=critical)
            self._regs.append(reg)

    def register(self, i: int) -> AtomicRegister:
        """The underlying register at index ``i``."""
        return self._regs[i]

    def read(self, i: int, reader: int) -> Any:
        """Atomic counted read of entry ``i``."""
        return self._regs[i].read(reader)

    def write(self, i: int, writer: int, value: Any) -> None:
        """Atomic counted write of entry ``i`` (owner-checked)."""
        self._regs[i].write(writer, value)

    def peek(self, i: int) -> Any:
        """Observer read of entry ``i`` (uncounted)."""
        return self._regs[i].peek()

    def peek_all(self) -> List[Any]:
        """Observer snapshot of the whole array."""
        return [r.peek() for r in self._regs]

    def __len__(self) -> int:
        return self.n


class RegisterMatrix:
    """An ``n x n`` matrix of 1WnR registers with per-entry ownership.

    Parameters
    ----------
    owner_of:
        Maps ``(row, col)`` to the owning pid.  Defaults to row
        ownership (``SUSPICIONS``); Algorithm 2's ``LAST`` passes
        ``lambda row, col: col``.
    """

    def __init__(
        self,
        memory: Optional["SharedMemory"],
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int, int], int]] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("matrix size must be positive")
        self.name = name
        self.n = n
        owner_fn = owner_of or (lambda row, col: row)
        self._regs: List[List[AtomicRegister]] = []
        for i in range(n):
            row: List[AtomicRegister] = []
            for j in range(n):
                reg_name = f"{name}[{i}][{j}]"
                if memory is not None:
                    reg = memory.create_register(
                        reg_name, owner=owner_fn(i, j), initial=initial, critical=critical
                    )
                else:
                    reg = AtomicRegister(
                        reg_name, owner=owner_fn(i, j), initial=initial, critical=critical
                    )
                row.append(reg)
            self._regs.append(row)

    def register(self, i: int, j: int) -> AtomicRegister:
        """The underlying register at ``(i, j)``."""
        return self._regs[i][j]

    def read(self, i: int, j: int, reader: int) -> Any:
        """Atomic counted read of entry ``(i, j)``."""
        return self._regs[i][j].read(reader)

    def write(self, i: int, j: int, writer: int, value: Any) -> None:
        """Atomic counted write of entry ``(i, j)`` (owner-checked)."""
        self._regs[i][j].write(writer, value)

    def peek(self, i: int, j: int) -> Any:
        """Observer read of entry ``(i, j)`` (uncounted)."""
        return self._regs[i][j].peek()

    def peek_column(self, j: int) -> List[Any]:
        """Observer snapshot of column ``j`` (e.g. all suspicions of ``p_j``)."""
        return [self._regs[i][j].peek() for i in range(self.n)]

    def peek_row(self, i: int) -> List[Any]:
        """Observer snapshot of row ``i``."""
        return [self._regs[i][j].peek() for j in range(self.n)]

    def column_sum(self, j: int) -> Any:
        """Observer sum of column ``j`` -- the paper's ``sum_j SUSPICIONS[j][k]``."""
        return sum(self.peek_column(j))


__all__ = ["RegisterArray", "RegisterMatrix"]
