"""Dynamic replica membership: versioned configs and churn timelines.

The PR 4-8 emulation froze the replica set at ``start()``: crashed
replicas could recover (PR 8) but never be *replaced*, so the system
degraded monotonically.  This module adds the RAMBO-style vocabulary
the emulation reconfigures with:

* :class:`ReplicaConfig` -- a versioned member set (config id +
  replica indices) with its majority-quorum size;
* :class:`MembershipEvent` -- one operator action, ``join`` (a fresh
  replica index enters the member set) or ``leave`` (a member exits);
* :class:`MembershipPlan` -- a validated, JSON-round-trippable
  timeline of membership events, mirroring the
  :class:`repro.faults.plan.FaultPlan` idioms so plans travel inside
  scenario-factory kwargs through the parallel engine's content-hashed
  specs.

Each event triggers one *transition*: the emulation opens a two-config
window in which every read/write quorum must intersect a majority of
**both** the old and the new config, then a state-transfer round
installs the new config and garbage-collects the old
(:mod:`repro.memory.emulated`).  Overlapping events queue and run
back-to-back, one transition at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

#: The membership kinds a plan may schedule, in timeline tie-break
#: order (a join sorts before a leave at equal times so a
#: replace-one-replica pair keeps the member set large).
MEMBERSHIP_KINDS: Tuple[str, ...] = ("join", "leave")

#: How the emulation behaves during a transition window.
#: ``dual-quorum`` is the correct RAMBO-style mode: window quorums
#: intersect a majority of both configs and a state-transfer round
#: gates the install.  ``single-config`` is the DELIBERATELY BROKEN
#: negative-control mode: window quorums consult the old config only
#: and the install skips the state transfer, so joiners serve with
#: whatever they happened to overhear -- the classic naive
#: reconfiguration bug the history audits must catch.
TRANSITION_MODES: Tuple[str, ...] = ("dual-quorum", "single-config")

#: Spec/CLI-level membership overrides (``repro run|sweep
#: --membership``): ``none`` strips the membership plan from every
#: emulated cell (the churn-free control), ``churn`` forces the
#: canonical :func:`churn_plan` -- one mid-run replace-one-replica
#: reconfiguration scaled to each cell's horizon -- onto every emulated
#: cell.
MEMBERSHIP_MODES: Tuple[str, ...] = ("none", "churn")


@dataclass(frozen=True)
class ReplicaConfig:
    """One versioned replica configuration: config id + member set."""

    config_id: int
    members: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.config_id < 0:
            raise ValueError(f"negative config id {self.config_id}")
        canonical = tuple(sorted(int(i) for i in self.members))
        if not canonical:
            raise ValueError("a replica config needs at least one member")
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"config {self.config_id} repeats a member index")
        if canonical[0] < 0:
            raise ValueError(f"config {self.config_id} has a negative member index")
        object.__setattr__(self, "members", canonical)

    @property
    def majority(self) -> int:
        """Quorum size: any two majorities of one config intersect."""
        return len(self.members) // 2 + 1

    @property
    def member_set(self) -> FrozenSet[int]:
        """The members as a frozenset (quorum-intersection checks)."""
        return frozenset(self.members)

    def quorum_met(self, replies: Set[int]) -> bool:
        """True when ``replies`` contains a majority of this config."""
        return len(replies & self.member_set) >= self.majority


@dataclass(frozen=True)
class MembershipEvent:
    """One timeline entry: a replica joins or leaves the member set."""

    kind: str
    at: float
    replica: int

    def __post_init__(self) -> None:
        if self.kind not in MEMBERSHIP_KINDS:
            raise ValueError(
                f"unknown membership kind {self.kind!r}; choose from {list(MEMBERSHIP_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"negative membership time {self.at} for {self.kind}")
        if self.replica < 0:
            raise ValueError(f"{self.kind} needs a non-negative replica index")

    # ------------------------------------------------------------------
    def sort_key(self) -> Tuple[float, int, int]:
        """Deterministic timeline ordering (time, then kind priority)."""
        return (self.at, MEMBERSHIP_KINDS.index(self.kind), self.replica)

    def to_jsonable(self) -> Dict[str, Any]:
        """The plain-dict form (scenario kwargs, JSON payloads)."""
        return {"kind": self.kind, "at": self.at, "replica": self.replica}

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "MembershipEvent":
        """Rebuild an event from :meth:`to_jsonable` output."""
        data = dict(payload)
        unknown = set(data) - {"kind", "at", "replica"}
        if unknown:
            raise ValueError(f"unknown membership-event key(s): {sorted(unknown)}")
        return cls(
            kind=str(data.get("kind", "")),
            at=float(data.get("at", -1.0)),
            replica=int(data.get("replica", -1)),
        )


@dataclass(frozen=True)
class MembershipPlan:
    """A sorted timeline of :class:`MembershipEvent` entries."""

    events: Tuple[MembershipEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=MembershipEvent.sort_key))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Any:
        return iter(self.events)

    # ------------------------------------------------------------------
    def validate(self, replicas: int) -> None:
        """Check the timeline is a legal state machine for ``replicas``.

        Joined replicas extend the replica array, so a join must carry
        the next fresh index (``replicas``, then ``replicas + 1``, ...);
        a leave must name a current member; and the member set must
        never drop below two (a single survivor has no non-trivial
        quorum left to intersect).
        """
        if replicas < 2:
            raise ValueError(f"membership plans need >= 2 initial replicas, got {replicas}")
        members: Set[int] = set(range(replicas))
        next_index = replicas
        for ev in self.events:
            if ev.kind == "join":
                if ev.replica != next_index:
                    raise ValueError(
                        f"join of replica {ev.replica} out of order: the next fresh "
                        f"index is {next_index} (joins extend the replica array)"
                    )
                members.add(ev.replica)
                next_index += 1
            else:  # leave
                if ev.replica not in members:
                    raise ValueError(f"leave of replica {ev.replica}: not a member")
                members.discard(ev.replica)
                if len(members) < 2:
                    raise ValueError(
                        f"leave of replica {ev.replica} at t={ev.at} would drop the "
                        "member set below two"
                    )

    # ------------------------------------------------------------------
    def member_timeline(self, replicas: int) -> Tuple[Tuple[float, Tuple[int, ...]], ...]:
        """``(at, members_after)`` snapshots, one per event.

        The pre-plan configuration ``(0.0, (0, ..., replicas-1))`` is
        always the first entry, so a consumer can walk membership state
        against any other timeline (e.g. crash times).
        """
        members: Set[int] = set(range(replicas))
        out: List[Tuple[float, Tuple[int, ...]]] = [(0.0, tuple(sorted(members)))]
        for ev in self.events:
            if ev.kind == "join":
                members.add(ev.replica)
            else:
                members.discard(ev.replica)
            out.append((ev.at, tuple(sorted(members))))
        return tuple(out)

    def final_members(self, replicas: int) -> Tuple[int, ...]:
        """The member set once every event has applied."""
        return self.member_timeline(replicas)[-1][1]

    def max_replica_index(self, replicas: int) -> int:
        """One past the largest replica index the run will ever host."""
        joins = sum(1 for ev in self.events if ev.kind == "join")
        return replicas + joins

    def last_event_time(self) -> float:
        """When the operator is quiet again (0.0 for an empty plan)."""
        return max((ev.at for ev in self.events), default=0.0)

    # ------------------------------------------------------------------
    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The plain list-of-dicts form (scenario kwargs, JSON payloads)."""
        return [ev.to_jsonable() for ev in self.events]

    @classmethod
    def from_jsonable(cls, payload: Optional[Sequence[Mapping[str, Any]]]) -> "MembershipPlan":
        """Rebuild a plan from :meth:`to_jsonable` output (``None`` -> empty)."""
        return cls(tuple(MembershipEvent.from_jsonable(ev) for ev in payload or ()))


def churn_plan(
    replicas: int, horizon: float, *, start_frac: float = 0.3, gap_frac: float = 0.25
) -> MembershipPlan:
    """The canonical replace-one-replica churn: join a fresh replica at
    ``start_frac * horizon``, retire replica 0 one ``gap_frac`` later.

    This is the plan the ``--membership churn`` override forces onto
    every emulated cell and the one the fuzzer's membership axis
    mutates in: two back-to-back transitions (each with its own
    dual-quorum window and state transfer), scaled to the cell's
    horizon so every run reconfigures mid-flight with time to settle.
    """
    return MembershipPlan(
        (
            MembershipEvent("join", start_frac * horizon, replicas),
            MembershipEvent("leave", (start_frac + gap_frac) * horizon, 0),
        )
    )


__all__ = [
    "MEMBERSHIP_KINDS",
    "MEMBERSHIP_MODES",
    "MembershipEvent",
    "MembershipPlan",
    "ReplicaConfig",
    "TRANSITION_MODES",
    "churn_plan",
]
