"""Consistency checking for interval register histories.

Two substrates produce *interval* histories -- each operation has an
invocation and a response, and reads report the identity of the value
they returned:

* the SAN disk model (:mod:`repro.memory.disk`), whose
  :class:`~repro.memory.disk.DiskOpRecord` identifies values by a
  per-register write *version*;
* the ABD register emulation (:mod:`repro.memory.emulated`), whose
  :class:`~repro.memory.emulated.EmuOpRecord` identifies values by the
  protocol's ``(counter, pid)`` *timestamp* (history recording must be
  enabled via ``EmulationConfig.record_history``).

For a single-writer register whose writes are issued in program order,
Lamport's classical characterization says such a history is atomic iff
three conditions hold:

1. **No read from the future** -- a read may not return a value whose
   write was invoked after the read responded.
2. **No stale read** -- a read may not return a value that was already
   overwritten before the read was invoked (a strictly newer write
   responded before the read began).
3. **No new/old inversion** -- if one read responds before another is
   invoked, the later read must not return an older value.

Conditions 1-2 alone characterize Lamport's *regular* level: every read
returns the last completed write or one concurrent with it, but
non-overlapping reads may still see new-then-old.  That split is
exactly the emulation's consistency axis: regular-level runs are
audited by :func:`check_regular_history` (conditions 1-2), atomic-level
runs by :func:`check_atomic_history` (all three) -- and
:mod:`repro.memory.anomaly` pins a deterministic history that passes
the former and fails the latter.

Everything is checked purely from the ``(inv, resp, identity)``
triples; recorded linearization witnesses are deliberately ignored
(tests use them to validate the checkers themselves).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.memory.disk import DiskOpRecord


@dataclass(frozen=True, slots=True)
class Violation:
    """A single linearizability violation."""

    register: str
    rule: str
    detail: str


@dataclass(slots=True)
class LinearizabilityReport:
    """Outcome of a history check."""

    ok: bool
    violations: List[Violation] = field(default_factory=list)
    registers_checked: int = 0
    ops_checked: int = 0

    def summary(self) -> str:
        """One-paragraph human-readable verdict (first 10 violations).

        An empty history is reported as vacuous -- "0 ops consistent"
        must not read like evidence -- and a long violation list states
        how many entries were elided instead of truncating silently.
        """
        if self.ops_checked == 0:
            return "empty history: no operations to check (vacuously consistent)"
        if self.ok:
            return (
                f"consistent: {self.ops_checked} ops over "
                f"{self.registers_checked} registers"
            )
        lines = [f"NOT consistent ({len(self.violations)} violations):"]
        lines += [f"  [{v.register}] {v.rule}: {v.detail}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def check_single_writer_history(history: Sequence[DiskOpRecord]) -> LinearizabilityReport:
    """Check an interval history of single-writer registers.

    Version ``-1`` denotes the initial value (conceptually written
    before the run started).
    """
    by_register: Dict[str, List[DiskOpRecord]] = {}
    for rec in history:
        by_register.setdefault(rec.register, []).append(rec)

    report = LinearizabilityReport(ok=True)
    for register, ops in sorted(by_register.items()):
        report.registers_checked += 1
        report.ops_checked += len(ops)
        writes = sorted((o for o in ops if o.kind == "write"), key=lambda o: o.version)
        reads = [o for o in ops if o.kind == "read"]
        write_by_version = {w.version: w for w in writes}

        # Single-writer sanity: versions are distinct, consecutive and
        # program-ordered.  Duplicates get one clean violation each
        # (equal-version "concurrent" writes cannot come from a single
        # writer) instead of a cascade of version-gap noise, and the
        # gap check then runs over the distinct versions only.
        seen_versions: set = set()
        for w in writes:
            if w.version in seen_versions:
                report.violations.append(
                    Violation(
                        register,
                        "duplicate-version",
                        f"two writes claim version {w.version} "
                        f"(second spans [{w.inv}, {w.resp}]); a single "
                        "writer cannot issue concurrent writes",
                    )
                )
            seen_versions.add(w.version)
        for i, version in enumerate(sorted(seen_versions)):
            if version != i:
                report.violations.append(
                    Violation(
                        register,
                        "version-gap",
                        f"write versions not consecutive: expected {i}, found {version}",
                    )
                )
        distinct = [write_by_version[v] for v in sorted(seen_versions)]
        for i in range(1, len(distinct)):
            if distinct[i - 1].inv > distinct[i].inv:
                report.violations.append(
                    Violation(
                        register,
                        "program-order",
                        f"writes {distinct[i - 1].version} and {distinct[i].version} "
                        "out of invocation order",
                    )
                )

        for r in reads:
            if r.version >= 0:
                w = write_by_version.get(r.version)
                if w is None:
                    report.violations.append(
                        Violation(register, "phantom-read", f"read returned unknown version {r.version}")
                    )
                    continue
                # Rule 1: no read from the future.
                if w.inv > r.resp:
                    report.violations.append(
                        Violation(
                            register,
                            "read-from-future",
                            f"read [{r.inv}, {r.resp}] returned version {r.version} "
                            f"invoked at {w.inv}",
                        )
                    )
            # Rule 2: no stale read.
            nxt = write_by_version.get(r.version + 1)
            if nxt is not None and nxt.resp < r.inv:
                report.violations.append(
                    Violation(
                        register,
                        "stale-read",
                        f"read [{r.inv}, {r.resp}] returned version {r.version} but "
                        f"version {r.version + 1} responded at {nxt.resp}",
                    )
                )

        # Rule 3: no new/old inversion between non-overlapping reads.
        reads_by_resp = sorted(reads, key=lambda o: o.resp)
        for i, r1 in enumerate(reads_by_resp):
            for r2 in reads_by_resp[i + 1 :]:
                if r1.resp < r2.inv and r1.version > r2.version:
                    report.violations.append(
                        Violation(
                            register,
                            "new-old-inversion",
                            f"read ending {r1.resp} saw version {r1.version}; later read "
                            f"starting {r2.inv} saw older version {r2.version}",
                        )
                    )

    report.ok = not report.violations
    return report


# ----------------------------------------------------------------------
# Timestamped interval histories (the ABD emulation's recorder)
# ----------------------------------------------------------------------
#: The timestamp every pre-run initial value carries
#: (= ``repro.memory.emulated._INITIAL_TS``; duplicated here to keep
#: the checker import-free of the emulation).
_INITIAL_TS: Tuple[int, int] = (0, -1)


def _check_interval_history(
    history: Sequence[Any], *, require_atomic: bool
) -> LinearizabilityReport:
    """Shared engine of the regular/atomic interval-order checks.

    ``history`` is any sequence of records with ``register``, ``kind``
    (``"read"``/``"write"``), ``ts`` (totally ordered value identity;
    :data:`_INITIAL_TS` marks the initial value), ``value`` (the
    payload carried under that timestamp -- reads must return their
    named write's exact value), ``inv`` and ``resp`` fields --
    :class:`~repro.memory.emulated.EmuOpRecord` in practice.
    Writes pending at the end of a run carry ``resp = inf`` and can
    never trigger the stale-read rule.  ``require_atomic`` adds the
    new/old-inversion rule (condition 3) on top of the regularity rules
    (conditions 1-2).
    """
    by_register: Dict[str, List[Any]] = {}
    for rec in history:
        by_register.setdefault(rec.register, []).append(rec)

    report = LinearizabilityReport(ok=True)
    for register, ops in sorted(by_register.items()):
        report.registers_checked += 1
        report.ops_checked += len(ops)
        writes = [o for o in ops if o.kind == "write"]
        reads = [o for o in ops if o.kind == "read"]

        # Distinct timestamps: two completed writes claiming the same
        # (counter, pid) stamp would make "the value a read returned"
        # ambiguous; report it cleanly and keep the last per stamp.
        write_by_ts: Dict[Tuple[int, int], Any] = {}
        for w in writes:
            if w.ts in write_by_ts:
                report.violations.append(
                    Violation(
                        register,
                        "duplicate-timestamp",
                        f"two writes claim timestamp {w.ts} "
                        f"(second spans [{w.inv}, {w.resp}])",
                    )
                )
            write_by_ts[w.ts] = w

        # Prefix maxima of completed-write timestamps by response time:
        # completed_max_ts_before(t) in O(log W) per read.
        completed = sorted((w for w in writes if w.resp != float("inf")), key=lambda w: w.resp)
        resp_times: List[float] = []
        prefix_max: List[Tuple[Tuple[int, int], Any]] = []
        best: Tuple[Tuple[int, int], Any] = (_INITIAL_TS, None)
        for w in completed:
            if w.ts > best[0]:
                best = (w.ts, w)
            resp_times.append(w.resp)
            prefix_max.append(best)

        for r in reads:
            w = write_by_ts.get(r.ts)
            if r.ts != _INITIAL_TS and w is None:
                report.violations.append(
                    Violation(
                        register,
                        "phantom-read",
                        f"read [{r.inv}, {r.resp}] returned unknown timestamp {r.ts}",
                    )
                )
                continue
            # Value integrity: the read's timestamp names a recorded
            # write, so the read must return that write's exact value.
            # Timestamps alone pass under value corruption (a mutated
            # payload travels with a valid stamp); cross-checking the
            # quorum certificate's value closes that hole.
            if w is not None and r.value != w.value:
                report.violations.append(
                    Violation(
                        register,
                        "value-corruption",
                        f"read [{r.inv}, {r.resp}] returned value {r.value!r} "
                        f"for timestamp {r.ts} but its write recorded "
                        f"{w.value!r}",
                    )
                )
            # Rule 1: no read from the future.
            if w is not None and w.inv > r.resp:
                report.violations.append(
                    Violation(
                        register,
                        "read-from-future",
                        f"read [{r.inv}, {r.resp}] returned timestamp {r.ts} "
                        f"whose write was invoked at {w.inv}",
                    )
                )
            # Rule 2: no stale read -- a strictly newer write must not
            # have completed before the read was invoked.
            idx = bisect.bisect_left(resp_times, r.inv)
            if idx > 0:
                newest_ts, newest = prefix_max[idx - 1]
                if newest_ts > r.ts:
                    report.violations.append(
                        Violation(
                            register,
                            "stale-read",
                            f"read [{r.inv}, {r.resp}] returned timestamp {r.ts} "
                            f"but write {newest_ts} responded at {newest.resp}",
                        )
                    )

        # Rule 3 (atomic only): no new/old inversion between
        # non-overlapping reads.  Sweep reads by invocation, keeping the
        # max timestamp among reads already responded.
        if require_atomic:
            by_inv = sorted(reads, key=lambda r: r.inv)
            by_resp = sorted(reads, key=lambda r: r.resp)
            max_done: Tuple[Tuple[int, int], Any] = (_INITIAL_TS, None)
            done_idx = 0
            for r in by_inv:
                while done_idx < len(by_resp) and by_resp[done_idx].resp < r.inv:
                    prev = by_resp[done_idx]
                    if prev.ts > max_done[0]:
                        max_done = (prev.ts, prev)
                    done_idx += 1
                if max_done[1] is not None and max_done[0] > r.ts:
                    witness = max_done[1]
                    report.violations.append(
                        Violation(
                            register,
                            "new-old-inversion",
                            f"read ending {witness.resp} saw timestamp {witness.ts}; "
                            f"later read starting {r.inv} saw older timestamp {r.ts}",
                        )
                    )

    report.ok = not report.violations
    return report


def check_regular_history(history: Sequence[Any]) -> LinearizabilityReport:
    """Regularity audit of a timestamped interval history.

    Every read must return the last completed write's value or one
    concurrent with the read (conditions 1-2 of the module docstring).
    This is the level the paper requires and what the emulation's
    default ``"regular"`` consistency provides, so regular-level runs
    must pass this check -- while possibly failing
    :func:`check_atomic_history` (new/old inversions are regular-legal).
    """
    return _check_interval_history(history, require_atomic=False)


def check_atomic_history(history: Sequence[Any]) -> LinearizabilityReport:
    """Atomicity (linearizability) audit of a timestamped interval history.

    All three conditions of the module docstring; the emulation's
    ``"atomic"`` consistency level (reads with the ABD write-back
    phase) must produce zero violations here.
    """
    return _check_interval_history(history, require_atomic=True)


__all__ = [
    "LinearizabilityReport",
    "Violation",
    "check_atomic_history",
    "check_regular_history",
    "check_single_writer_history",
]
