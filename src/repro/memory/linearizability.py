"""Linearizability checking for single-writer register histories.

The disk model produces *interval* histories: each operation has an
invocation and a response, and reads report the write *version* they
returned.  For a single-writer register whose writes are issued in
program order, Lamport's classical characterization says such a history
is atomic iff three conditions hold:

1. **No read from the future** -- a read may not return a version whose
   write was invoked after the read responded.
2. **No stale read** -- a read may not return a version that was
   already overwritten before the read was invoked (i.e. the *next*
   write responded before the read began).
3. **No new/old inversion** -- if one read responds before another is
   invoked, the later read must not return an older version.

These are checked purely from ``(inv, resp, version)``; the recorded
linearization witness is deliberately ignored (tests use it to validate
the checker itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.memory.disk import DiskOpRecord


@dataclass(frozen=True, slots=True)
class Violation:
    """A single linearizability violation."""

    register: str
    rule: str
    detail: str


@dataclass(slots=True)
class LinearizabilityReport:
    """Outcome of a history check."""

    ok: bool
    violations: List[Violation] = field(default_factory=list)
    registers_checked: int = 0
    ops_checked: int = 0

    def summary(self) -> str:
        """One-paragraph human-readable verdict (first 10 violations)."""
        if self.ok:
            return (
                f"linearizable: {self.ops_checked} ops over "
                f"{self.registers_checked} registers"
            )
        lines = [f"NOT linearizable ({len(self.violations)} violations):"]
        lines += [f"  [{v.register}] {v.rule}: {v.detail}" for v in self.violations[:10]]
        return "\n".join(lines)


def check_single_writer_history(history: Sequence[DiskOpRecord]) -> LinearizabilityReport:
    """Check an interval history of single-writer registers.

    Version ``-1`` denotes the initial value (conceptually written
    before the run started).
    """
    by_register: Dict[str, List[DiskOpRecord]] = {}
    for rec in history:
        by_register.setdefault(rec.register, []).append(rec)

    report = LinearizabilityReport(ok=True)
    for register, ops in sorted(by_register.items()):
        report.registers_checked += 1
        report.ops_checked += len(ops)
        writes = sorted((o for o in ops if o.kind == "write"), key=lambda o: o.version)
        reads = [o for o in ops if o.kind == "read"]
        write_by_version = {w.version: w for w in writes}

        # Single-writer sanity: versions are consecutive and program-ordered.
        for i, w in enumerate(writes):
            if w.version != i:
                report.violations.append(
                    Violation(register, "version-gap", f"write versions not consecutive at {w}")
                )
            if i > 0 and writes[i - 1].inv > w.inv:
                report.violations.append(
                    Violation(
                        register,
                        "program-order",
                        f"writes {i - 1} and {i} out of invocation order",
                    )
                )

        for r in reads:
            if r.version >= 0:
                w = write_by_version.get(r.version)
                if w is None:
                    report.violations.append(
                        Violation(register, "phantom-read", f"read returned unknown version {r.version}")
                    )
                    continue
                # Rule 1: no read from the future.
                if w.inv > r.resp:
                    report.violations.append(
                        Violation(
                            register,
                            "read-from-future",
                            f"read [{r.inv}, {r.resp}] returned version {r.version} "
                            f"invoked at {w.inv}",
                        )
                    )
            # Rule 2: no stale read.
            nxt = write_by_version.get(r.version + 1)
            if nxt is not None and nxt.resp < r.inv:
                report.violations.append(
                    Violation(
                        register,
                        "stale-read",
                        f"read [{r.inv}, {r.resp}] returned version {r.version} but "
                        f"version {r.version + 1} responded at {nxt.resp}",
                    )
                )

        # Rule 3: no new/old inversion between non-overlapping reads.
        reads_by_resp = sorted(reads, key=lambda o: o.resp)
        for i, r1 in enumerate(reads_by_resp):
            for r2 in reads_by_resp[i + 1 :]:
                if r1.resp < r2.inv and r1.version > r2.version:
                    report.violations.append(
                        Violation(
                            register,
                            "new-old-inversion",
                            f"read ending {r1.resp} saw version {r1.version}; later read "
                            f"starting {r2.inv} saw older version {r2.version}",
                        )
                    )

    report.ok = not report.violations
    return report


__all__ = ["LinearizabilityReport", "Violation", "check_single_writer_history"]
