"""Atomic one-writer/multi-reader (1WnR) registers.

In the simulator every operation is applied at a single virtual-time
instant -- its linearization point -- so atomicity in Herlihy & Wing's
sense holds by construction.  What the register layer adds is:

* **ownership enforcement**: only the owner may write (the paper's model
  and the reason ``SUSPICIONS`` is an ``n x n`` matrix rather than a
  vector);
* **accounting hooks** into :class:`~repro.memory.memory.SharedMemory`,
  so the analysis layer can answer "who wrote what, when" -- which is
  how Theorems 2, 3, 5, 6, 7 are checked;
* **criticality**: registers may be flagged *critical*, the subset of
  registers the AWB1 assumption constrains (``PROGRESS`` and ``STOP``
  in both algorithms; ``SUSPICIONS`` is explicitly non-critical).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.memory import SharedMemory


class OwnershipError(RuntimeError):
    """A process wrote a register it does not own."""


class AtomicRegister:
    """An atomic 1WnR register.

    Instances are created through :class:`SharedMemory` (which supplies
    the clock and accounting); constructing one directly with
    ``memory=None`` yields an unaccounted register, handy in unit tests.

    Parameters
    ----------
    name:
        Globally unique name, e.g. ``"PROGRESS[3]"``.
    owner:
        The pid allowed to write, or ``None`` for "unowned" registers
        used by infrastructure.
    initial:
        Initial value.  The paper's algorithms tolerate *arbitrary*
        initial values (footnote 7: the algorithms are self-stabilizing
        with respect to shared variables); scenario knobs exploit this.
    critical:
        Whether the register is subject to the AWB1 timing assumption.
    """

    __slots__ = ("name", "owner", "critical", "_value", "_memory", "_writes", "_reads")

    def __init__(
        self,
        name: str,
        owner: Optional[int],
        initial: Any = 0,
        critical: bool = False,
        memory: Optional["SharedMemory"] = None,
    ) -> None:
        self.name = name
        self.owner = owner
        self.critical = critical
        self._value = initial
        self._memory = memory
        self._writes = 0
        self._reads = 0

    # ------------------------------------------------------------------
    # Operations (linearize at the instant they are applied)
    # ------------------------------------------------------------------
    def read(self, reader: int) -> Any:
        """Atomically read the register (counted)."""
        self._reads += 1
        if self._memory is not None:
            self._memory._note_read(self.name, reader)
        return self._value

    def write(self, writer: int, value: Any) -> None:
        """Atomically write the register (counted); owner-checked."""
        if self.owner is not None and writer != self.owner:
            raise OwnershipError(
                f"process {writer} attempted to write {self.name} owned by {self.owner}"
            )
        self._writes += 1
        self._value = value
        if self._memory is not None:
            self._memory._note_write(self.name, writer, value, critical=self.critical)

    # ------------------------------------------------------------------
    # Observer access (not part of the modelled computation)
    # ------------------------------------------------------------------
    def peek(self) -> Any:
        """Read without accounting -- for observers, tests and tracing."""
        return self._value

    def poke(self, value: Any) -> None:
        """Set without accounting or ownership check.

        Used by scenario setup to scramble initial values
        (self-stabilization experiments) -- never by algorithms.
        """
        self._value = value

    @property
    def write_count(self) -> int:
        """Number of (counted) writes ever applied."""
        return self._writes

    @property
    def read_count(self) -> int:
        """Number of (counted) reads ever applied."""
        return self._reads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicRegister({self.name!r}, owner={self.owner}, value={self._value!r})"


__all__ = ["AtomicRegister", "OwnershipError"]
