"""The memory-backend layer: one register API, pluggable substrates.

The paper's model ``AS[n, AWB]`` takes 1WMR regular registers as a
primitive.  How those registers are *realized* is a deployment choice,
and this module makes it a first-class, pluggable axis:

* ``"shared"`` -- :class:`~repro.memory.memory.SharedMemory`: every
  operation linearizes instantaneously at a virtual-time point (the
  paper's model taken literally, and the fastest substrate);
* ``"emulated"`` -- :class:`~repro.memory.emulated.EmulatedMemory`: an
  ABD-style quorum emulation over :mod:`repro.netsim` message passing
  (reader/writer phases, majority acks, timestamped replica values),
  for deployments with no physical shared memory.

Every backend implements the :class:`MemoryBackend` protocol --
register-namespace construction, the read/write accounting hooks (with
the no-log read fast path), the window queries the theorem monitors
replay, and global-state snapshots.  Algorithms, scenario scrambling,
the analysis layer and the property checkers are all written against
this protocol, so a backend swap multiplies every experiment in the
repo instead of adding one.

:func:`create_memory` is the single construction point
:class:`~repro.core.runner.Run` uses; ``Run(..., memory="emulated")``
(or ``repro sweep --memory emulated``) selects the backend by name.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.arrays import RegisterArray, RegisterMatrix
    from repro.memory.memory import SharedMemory, WriteRecord
    from repro.memory.mwmr import MultiWriterRegister
    from repro.memory.register import AtomicRegister
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry


#: Backend name -> one-line description (the ``--memory`` choices).
BACKENDS: Dict[str, str] = {
    "shared": "atomic registers linearizing instantaneously (the paper's model)",
    "emulated": "ABD-style quorum emulation of the registers over netsim message passing",
}


@runtime_checkable
class MemoryBackend(Protocol):
    """The substrate surface the rest of the repo is written against.

    The protocol covers four concerns:

    * **namespace construction** -- ``create_register`` / ``create_array``
      / ``create_matrix`` / ``create_mwmr``, called once per run by the
      algorithm's ``create_shared``;
    * **accounting hooks** -- ``_note_read`` / ``_note_write``, invoked
      by the register objects on every counted access.  ``_note_read``
      is hook-swapped at construction time when ``log_reads`` is false
      (the PR 3 no-log fast path), so backends must route reads through
      the *instance attribute*, never the class method;
    * **window queries and censuses** -- what the Theorem 1-4 monitors
      and the write-statistics layer replay after a run;
    * **global snapshots** -- the Theorem 5 recurring-state harness.

    :class:`~repro.memory.memory.SharedMemory` is the reference
    implementation; :class:`~repro.memory.emulated.EmulatedMemory`
    subclasses it, sharing the namespace and the accounting while
    replacing the *operation semantics* (reads and writes become
    asynchronous quorum phases driven by the run's process runtime).
    """

    log_reads: bool
    write_log: List["WriteRecord"]

    def create_register(
        self, name: str, owner: Optional[int], initial: Any = 0, critical: bool = False
    ) -> "AtomicRegister":
        """Create and register a named 1WnR register."""
        ...

    def create_array(
        self,
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int], int]] = None,
    ) -> "RegisterArray":
        """Create a named array of 1WnR registers."""
        ...

    def create_matrix(
        self,
        name: str,
        n: int,
        initial: Any = 0,
        critical: bool = False,
        owner_of: Optional[Callable[[int, int], int]] = None,
    ) -> "RegisterMatrix":
        """Create a named matrix of 1WnR registers."""
        ...

    def create_mwmr(
        self, name: str, initial: Any = 0, critical: bool = False
    ) -> "MultiWriterRegister":
        """Create a multi-writer register (Section 3.5 variant)."""
        ...

    def all_registers(self) -> List[Any]:
        """Every register object, name-sorted (observer/scenario use)."""
        ...

    def _note_read(self, name: str, pid: int) -> None:
        """Accounting hook: one counted read of ``name`` by ``pid``."""
        ...

    def _note_write(self, name: str, pid: int, value: Any, critical: bool) -> None:
        """Accounting hook: one counted write of ``name`` by ``pid``."""
        ...

    def writes_in(self, t0: float, t1: float) -> List["WriteRecord"]:
        """Write records with ``t0 <= time < t1``."""
        ...

    def writers_in(self, t0: float, t1: float) -> FrozenSet[int]:
        """Pids that wrote at least once in ``[t0, t1)``."""
        ...

    def snapshot(self) -> Tuple[Tuple[str, Any], ...]:
        """Hashable snapshot of the full register state."""
        ...

    @property
    def total_reads(self) -> int:
        """Counted reads across all processes."""
        ...

    @property
    def total_writes(self) -> int:
        """Counted writes across all processes."""
        ...


def create_memory(
    backend: str,
    *,
    clock: Callable[[], float],
    log_reads: bool = True,
    sim: Optional["Simulator"] = None,
    rng: Optional["RngRegistry"] = None,
    emulation: Optional[Mapping[str, Any]] = None,
) -> "SharedMemory":
    """Build the named backend (the single construction point of ``Run``).

    Parameters
    ----------
    backend:
        A key of :data:`BACKENDS` (``"shared"`` or ``"emulated"``).
    clock / log_reads:
        Forwarded to every backend (the virtual clock and the no-log
        read fast path switch).
    sim / rng:
        Required by the emulated backend (its replica messages ride the
        run's simulator; its link delays draw from the run's RNG
        registry).  Ignored by ``"shared"``.
    emulation:
        Plain-dict knobs for
        :class:`~repro.memory.emulated.EmulationConfig` (replica count,
        link model, crash schedule...); ``None`` means the defaults.
        Rejected for ``"shared"``, where it would be silently dead
        configuration.

    Returns the backend instance (always a
    :class:`~repro.memory.memory.SharedMemory` subtype, so every
    consumer of the access logs keeps working unchanged).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown memory backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    if backend == "shared":
        if emulation:
            raise ValueError(
                "emulation options were provided but the backend is 'shared'; "
                "pass memory='emulated' or drop the options"
            )
        from repro.memory.memory import SharedMemory

        return SharedMemory(clock=clock, log_reads=log_reads)

    from repro.memory.emulated import EmulatedMemory, EmulationConfig

    if sim is None or rng is None:
        raise ValueError("the emulated backend needs the run's simulator and RNG registry")
    config = EmulationConfig.from_dict(emulation or {})
    return EmulatedMemory(clock=clock, sim=sim, rng=rng, config=config, log_reads=log_reads)


__all__ = ["BACKENDS", "MemoryBackend", "create_memory"]
