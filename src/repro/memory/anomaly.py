"""The pinned regular-vs-atomic anomaly: where the two levels diverge.

A *regular* register (the paper's requirement, the emulation's default
consistency level) permits something an *atomic* register forbids: two
non-overlapping reads, both concurrent with one slow write, may see the
new value first and the old value second (a **new/old inversion**).
This module pins one deterministic schedule in which the single-phase
ABD read genuinely produces that anomaly -- and in which the atomic
level's write-back phase provably closes it:

* five replicas, majority three; one writer (pid 0) and two readers
  (pids 1 and 2);
* link delays are deterministic per (client, replica) pair: the writer
  is fast **only to replica 0**, reader 1 is fast to replicas
  ``{0, 1, 2}``, reader 2 is fast to replicas ``{2, 3, 4}``; every
  other pair is slow;
* the writer invokes a write at t=0 -- it reaches replica 0 almost
  immediately but needs a slow round trip to assemble its majority, so
  it stays in flight for the whole window;
* reader 1 reads at t=2: its fast majority includes replica 0, so it
  returns the **new** value (legal: the read is concurrent with the
  write);
* reader 2 reads at t=4, *after reader 1 responded*: its fast majority
  ``{2, 3, 4}`` has not heard of the write, so at the regular level it
  returns the **old** value -- a new/old inversion, flagged by
  :func:`repro.memory.linearizability.check_atomic_history` and passed
  by :func:`~repro.memory.linearizability.check_regular_history`.

At the atomic level the schedule is identical except that reader 1's
write-back propagates the new value to its fast majority -- which
intersects reader 2's fast majority in replica 2 -- so reader 2 returns
the new value and the history is linearizable.  The positive/negative
pair is the point: it demonstrates the write-back phase is *load
bearing*, not ceremony, and it keeps the checkers honest (the atomic
checker must flag a real regular history, not only synthetic ones).

Used by ``tests/memory/test_anomaly.py`` and quoted in
EXPERIMENTS.md's "when regular and atomic legitimately differ".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.memory.emulated import EmuOpRecord, EmulatedMemory, EmulationConfig
from repro.netsim.network import Message
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

#: Fast one-way link delay of the pinned schedule.
FAST = 0.25
#: Slow one-way link delay (longer than the whole observation window).
SLOW = 50.0
#: Which (client pid, replica index) pairs are fast; everything else is
#: slow.  The writer reaches only replica 0 quickly; the readers' fast
#: majorities intersect in replica 2 -- the write-back's carrier.
FAST_PAIRS: FrozenSet[Tuple[int, int]] = frozenset(
    [(0, 0)]
    + [(1, i) for i in (0, 1, 2)]
    + [(2, i) for i in (2, 3, 4)]
)


class PartitionedLinks:
    """Deterministic per-(client, replica) delays: fast or slow.

    Direction does not matter -- a request and its reply ride the same
    (client, replica) pair -- and no randomness is drawn, so the
    schedule is exactly reproducible.
    """

    def __init__(
        self,
        fast: float = FAST,
        slow: float = SLOW,
        fast_pairs: FrozenSet[Tuple[int, int]] = FAST_PAIRS,
    ) -> None:
        if not 0 < fast <= slow:
            raise ValueError("need 0 < fast <= slow")
        self.fast = fast
        self.slow = slow
        self.fast_pairs = frozenset(fast_pairs)

    def delivery_delay(self, message: Message) -> Optional[float]:
        """The pair's fixed delay; never a drop."""
        client = message.sender if message.sender >= 0 else message.receiver
        replica = -(message.sender if message.sender < 0 else message.receiver) - 1
        return self.fast if (client, replica) in self.fast_pairs else self.slow


def anomaly_history(consistency: str = "regular") -> List[EmuOpRecord]:
    """Run the pinned schedule at ``consistency`` and return its history.

    The returned interval records are ready for the checkers: at
    ``"regular"`` the history passes the regularity check but fails the
    atomic check with a ``new-old-inversion``; at ``"atomic"`` it
    passes both.  Deterministic -- no randomness is drawn anywhere.
    """
    sim = Simulator()
    mem = EmulatedMemory(
        clock=lambda: sim.now,
        sim=sim,
        rng=RngRegistry(0),
        config=EmulationConfig(
            replicas=5,
            consistency=consistency,
            record_history=True,
            retry_interval=1000.0,  # never retransmits inside the window
        ),
    )
    mem.network.behavior = PartitionedLinks()
    reg = mem.create_register("R", owner=0, initial=0)
    mem.start(horizon=1000.0)

    returned: Dict[str, object] = {}
    sim.schedule_at(0.0, lambda: mem.emu_write(0, reg, 1, lambda _: None), kind="anomaly")
    sim.schedule_at(
        2.0,
        lambda: mem.emu_read(1, reg, lambda v: returned.__setitem__("r1", v)),
        kind="anomaly",
    )
    sim.schedule_at(
        4.0,
        lambda: mem.emu_read(2, reg, lambda v: returned.__setitem__("r2", v)),
        kind="anomaly",
    )
    # Run past 2 * SLOW so the write's slow majority completes too and
    # the history contains only finished intervals.
    # Top-level schedule driver, not a dispatch callback: running the
    # simulator here IS the point.
    sim.run(until=4.0 * SLOW)  # repro-lint: disable=dispatch-reentrant-run
    assert returned["r1"] == 1, "reader 1 must see the in-flight write via replica 0"
    return mem.recorded_history()


__all__ = ["FAST", "FAST_PAIRS", "PartitionedLinks", "SLOW", "anomaly_history"]
