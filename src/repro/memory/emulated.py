"""ABD-style quorum emulation of the paper's registers over messages.

The paper assumes 1WMR *regular* registers as a primitive.  Deployments
without physical shared memory (the cluster the paper's Section 1
motivates next to the SAN) must **emulate** those registers over
message passing.  This module implements the classic
Attiya-Bar-Noy-Dolev construction on top of :mod:`repro.netsim`:

* the register namespace is replicated across ``m`` replica nodes, each
  holding a ``(timestamp, value)`` pair per register;
* a **write** stamps the value with the writer's next timestamp,
  broadcasts it to every replica and completes on a majority of acks;
* a **read** queries every replica and completes on a majority of
  replies, returning the value with the largest timestamp.

Any two majorities intersect, so a read that starts after a write
completed sees it; a read concurrent with a write may return either
value -- exactly the *regular* register the paper requires (single
writer per register makes the read write-back phase of atomic ABD
unnecessary).  Multi-writer registers (the Section 3.5 variant) use
``(counter, pid)`` timestamps with a query phase before the write
phase; their ``fetch&add`` becomes the racy two-step
read-then-write emulation, which the variant is documented to tolerate
(lost increments only slow suspicion growth).

**Consistency levels** (``EmulationConfig.consistency``): the default
``"regular"`` level is the single-phase read above -- all the paper
needs.  The ``"atomic"`` level adds the classic ABD **write-back
phase**: before returning, a read propagates the ``(timestamp, value)``
it is about to return to a majority of replicas, which closes the
new/old-inversion window and upgrades the register to Lamport's
*atomic* level (both for the 1WMR registers and for the
``(counter, pid)``-stamped multi-writer path).  With the per-operation
history recorder on (``record_history``), the interval-order checkers
in :mod:`repro.memory.linearizability` audit the run: atomic histories
must be linearizable, regular histories must satisfy regularity --
and :mod:`repro.memory.anomaly` pins a deterministic schedule where
the two levels genuinely diverge.

The emulation tolerates crashes of **up to a minority** of replicas and
message loss (pending phases retransmit to unacked replicas every
``retry_interval``; the opt-in ``backoff`` retry policy swaps the
constant timer for jittered exponential backoff).  **Fault injection**
(``EmulationConfig.fault_plan``, a :mod:`repro.faults` timeline) adds
*transient* crashes: a recovering replica rejoins with amnesia and runs
a quorum **state-resync** -- merging ``(timestamp, value)`` snapshots
from a majority of the other replicas -- before serving reads again,
while partition/heal windows and message storms from the same plan
compile into a link-level overlay.  Link timing/loss is pluggable
through the :data:`LINK_MODELS` registry over the
:mod:`repro.netsim.network` behaviours -- including the PR 2
adversaries (GST ramps, fair loss).

**Dynamic membership** (``EmulationConfig.membership_plan``, a
:mod:`repro.memory.membership` timeline) removes the last frozen axis:
the replica set itself.  Each ``join``/``leave`` event opens a
RAMBO-style *two-config transition window*: the emulation holds both
the old :class:`~repro.memory.membership.ReplicaConfig` and the
proposed one, broadcasts every phase to the union of their members,
and requires every read/write quorum (including ABD write-backs and
amnesia resyncs) to intersect a **majority of both configs** -- reads
therefore take the max timestamp across both member sets.  After
``transfer_delay`` a **state-transfer round** collects snapshots from
a majority of the old config, pushes the merged state to the new
members, and -- once a majority of the new config acks -- *installs*
the new config and garbage-collects the old.  A joiner starts as an
amnesiac (it applies and acks writes but refuses reads) until the
transfer lands.  Overlapping events queue and transition one at a
time, so back-to-back reconfigurations are safe.  The
``"single-config"`` transition mode is the deliberately broken
negative control (old quorums only, no state transfer) that the
history audits must catch.

:class:`EmulatedMemory` subclasses
:class:`~repro.memory.memory.SharedMemory`: the namespace, the access
logs, the window queries and the no-log read fast path are all
inherited, so every theorem monitor, census and report in the repo
consumes emulated runs unchanged.  What changes is the *operation
semantics*: reads and writes become asynchronous phases, driven by the
process runtime (:mod:`repro.core.runner`), which blocks the issuing
process until its quorum completes -- operations are intervals, like
the SAN disk model, but realized by an actual replicated protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.memory.membership import (
    TRANSITION_MODES,
    MembershipEvent,
    MembershipPlan,
    ReplicaConfig,
)
from repro.memory.memory import SharedMemory
from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister, OwnershipError
from repro.netsim.network import (
    ChannelBehavior,
    CorruptingLinks,
    DuplicatingLinks,
    FairLossyLinks,
    Message,
    Network,
    PartitionScheduleLinks,
    RampLinks,
    SynchronousLinks,
    TimelyLinks,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

#: Timestamp ordering is lexicographic on ``(counter, pid)``; the
#: initial replica state predates every real write.
_INITIAL_TS: Tuple[int, int] = (0, -1)

#: The consistency levels the emulation can provide (Lamport's
#: hierarchy): ``regular`` is the single-phase read the paper needs,
#: ``atomic`` adds the ABD write-back phase to every read.
CONSISTENCY_LEVELS: Tuple[str, ...] = ("regular", "atomic")

#: Retransmission policies for pending quorum phases: ``fixed`` -- the
#: original constant ``retry_interval`` timer (draws no randomness, so
#: default-config runs stay byte-identical across releases) -- and
#: ``backoff`` -- exponential backoff doubling from ``retry_interval``
#: up to ``retry_cap``, with multiplicative sim-RNG jitter to break
#: retransmission synchrony under congestion.
RETRY_POLICIES: Tuple[str, ...] = ("fixed", "backoff")


@dataclass(frozen=True, slots=True)
class EmuOpRecord:
    """One completed (or still-pending) emulated operation.

    The interval shape mirrors :class:`~repro.memory.disk.DiskOpRecord`
    -- invocation and response times plus the identity of the value
    involved -- but the value identity is the protocol's own
    ``(counter, pid)`` timestamp instead of a disk-side version counter
    (timestamps also cover the multi-writer path, where per-register
    version numbers are not unique).  ``ts`` is the timestamp the
    operation wrote, or the one whose value a read returned;
    :data:`_INITIAL_TS` denotes the pre-run initial value.  A write
    still in flight when the run ends is reported with
    ``resp = math.inf`` (invoked, never responded).
    """

    op_id: int
    kind: str  # "read" | "write"
    pid: int
    register: str
    ts: Tuple[int, int]
    value: Any
    inv: float
    resp: float


def _make_links(name: str, rng: RngRegistry, params: Mapping[str, Any]) -> ChannelBehavior:
    """Instantiate a link model by registry name with keyword ``params``."""
    try:
        factory = LINK_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown emulation link model {name!r}; choose from {sorted(LINK_MODELS)}"
        ) from None
    return factory(rng, dict(params))


#: Link-model name -> ``(rng, params) -> ChannelBehavior`` factory.
#: ``sync`` draws no randomness at all, which is what makes the
#: backend-equivalence tests exact; the others re-use the netsim
#: behaviours (``gst-ramp`` is the PR 2 adversary ported to links).
#: ``corruption`` and ``duplication`` are the mutating-fault adversaries
#: over synchronous timing (``delta`` plus a mutation ``rate``): the
#: emulation must *survive* duplication (timestamp application is
#: idempotent) but is expected to *fail* the Theorem 1 audit under
#: value corruption -- the negative-scenario family.
LINK_MODELS: Dict[str, Callable[[RngRegistry, Dict[str, Any]], ChannelBehavior]] = {
    "sync": lambda rng, p: SynchronousLinks(**p),
    "timely": lambda rng, p: TimelyLinks(rng, **p),
    "lossy": lambda rng, p: FairLossyLinks(rng, **p),
    "gst-ramp": lambda rng, p: RampLinks(rng, **p),
    "corruption": lambda rng, p: CorruptingLinks(
        SynchronousLinks(p.pop("delta", 0.25)), rng, **p
    ),
    "duplication": lambda rng, p: DuplicatingLinks(
        SynchronousLinks(p.pop("delta", 0.25)), rng, **p
    ),
    # The fault-injection overlay on synchronous timing: scheduled
    # partition/heal windows and message storms (repro.faults plans
    # compile their link-level faults into exactly this model).
    "partition-schedule": lambda rng, p: PartitionScheduleLinks(
        SynchronousLinks(p.pop("delta", 0.25)), **p
    ),
}


@dataclass(frozen=True)
class EmulationConfig:
    """Plain-data knobs of one register emulation.

    Every field is JSON-serializable (ints, floats, strings, flat
    dicts), so configs travel inside scenario-factory kwargs through
    the parallel engine's content-hashed specs.

    Parameters
    ----------
    replicas:
        Number of replica nodes holding the register copies; quorums
        are majorities, so the emulation tolerates
        ``(replicas - 1) // 2`` replica crashes.
    links:
        Link-model name from :data:`LINK_MODELS`.
    link_params:
        Keyword arguments for the link model (e.g. ``{"delta": 0.25}``
        for ``sync``, ``{"loss": 0.1}`` for ``lossy``).
    retry_interval:
        Retransmission period for pending phases (loss tolerance; with
        loss-free link models the retransmit timers arm but never win).
    retry_policy:
        Retransmission policy (:data:`RETRY_POLICIES`): ``"fixed"`` --
        the constant-interval timer, the default, drawing no randomness
        -- or ``"backoff"`` -- exponential backoff doubling from
        ``retry_interval`` up to ``retry_cap`` with multiplicative
        sim-RNG jitter (``retry_jitter``).
    retry_cap:
        Upper bound on the backoff delay (pre-jitter); ignored by the
        fixed policy.
    retry_jitter:
        Jitter fraction of the backoff policy: each armed delay is
        scaled by a uniform draw from ``[1, 1 + retry_jitter]`` out of
        the run's seeded RNG registry.  The fixed policy draws nothing.
    replica_crash_times:
        ``{replica index: crash time}`` -- *permanent* crash-stop for
        replicas.  Must leave a majority alive or quorums become
        unreachable.  Transient crashes belong in ``fault_plan``.
    fault_plan:
        A :class:`repro.faults.plan.FaultPlan` timeline (as a tuple of
        :class:`~repro.faults.plan.FaultEvent`): transient replica
        crashes with recover-and-resync, partition/heal windows and
        message storms.  Crash/recover pairs are applied by
        :meth:`EmulatedMemory.start`; partition and storm windows are
        compiled into a
        :class:`~repro.netsim.network.PartitionScheduleLinks` overlay
        on the configured link model.
    resync:
        Whether a recovering replica runs the quorum state-resync
        before serving reads again (the correct protocol, default).
        ``False`` is the *deliberately broken* mode for negative tests:
        a recovered replica serves straight out of amnesia, which the
        history audit is expected to catch (and ``repro chaos`` to
        shrink).
    membership_plan:
        A :class:`repro.memory.membership.MembershipPlan` timeline (as
        a tuple of :class:`~repro.memory.membership.MembershipEvent`):
        operator-style ``join``/``leave`` transitions of the replica
        member set.  Each event opens a two-config transition window
        (quorums intersect majorities of both configs) that a
        state-transfer round closes by installing the new
        :class:`~repro.memory.membership.ReplicaConfig`.  Joins extend
        the replica array, so they must carry sequential fresh indices.
    transfer_delay:
        How long a transition window stays open before the
        state-transfer round starts.  The window is where the
        dual-quorum discipline is exercised (and what the
        ``EMU_membership`` bench prices), so it is a real knob, not an
        implementation detail.
    transition:
        Transition-window discipline
        (:data:`repro.memory.membership.TRANSITION_MODES`):
        ``"dual-quorum"`` -- the correct RAMBO-style mode, the default
        -- or ``"single-config"`` -- the *deliberately broken* negative
        control where window quorums consult the old config only and
        the install skips the state transfer, which the history audit
        is expected to catch (and ``repro fuzz`` to shrink).
    consistency:
        Consistency level of the emulated registers
        (:data:`CONSISTENCY_LEVELS`): ``"regular"`` -- single-phase
        reads, all the paper needs -- or ``"atomic"`` -- every read
        runs a second write-back phase propagating the returned
        ``(timestamp, value)`` to a majority before responding.
    record_history:
        Keep the per-operation interval history
        (:class:`EmuOpRecord`) so the run can be audited by the
        interval-order checkers in
        :mod:`repro.memory.linearizability`.  Off by default: the
        recorder is observability, not protocol, and perf profiles
        must not pay for it.
    """

    replicas: int = 3
    links: str = "sync"
    link_params: Tuple[Tuple[str, Any], ...] = ()
    retry_interval: float = 20.0
    retry_policy: str = "fixed"
    retry_cap: float = 160.0
    retry_jitter: float = 0.25
    replica_crash_times: Tuple[Tuple[int, float], ...] = ()
    fault_plan: Tuple[FaultEvent, ...] = ()
    resync: bool = True
    membership_plan: Tuple[MembershipEvent, ...] = ()
    transfer_delay: float = 150.0
    transition: str = "dual-quorum"
    consistency: str = "regular"
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ValueError("need at least two replicas for a meaningful quorum")
        if self.links not in LINK_MODELS:
            raise ValueError(
                f"unknown link model {self.links!r}; choose from {sorted(LINK_MODELS)}"
            )
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency level {self.consistency!r}; "
                f"choose from {list(CONSISTENCY_LEVELS)}"
            )
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.retry_policy not in RETRY_POLICIES:
            raise ValueError(
                f"unknown retry policy {self.retry_policy!r}; "
                f"choose from {list(RETRY_POLICIES)}"
            )
        # The cap is inert under "fixed" (no backoff ever reaches it),
        # so only the backoff policy constrains it against the interval.
        if self.retry_policy == "backoff" and self.retry_cap < self.retry_interval:
            raise ValueError("retry_cap must be at least retry_interval")
        if not 0 <= self.retry_jitter < 1:
            raise ValueError("retry_jitter must be in [0, 1)")
        FaultPlan(self.fault_plan).validate(self.replicas)
        plan = MembershipPlan(self.membership_plan)
        plan.validate(self.replicas)
        if self.transition not in TRANSITION_MODES:
            raise ValueError(
                f"unknown transition mode {self.transition!r}; "
                f"choose from {list(TRANSITION_MODES)}"
            )
        if self.transfer_delay <= 0:
            raise ValueError("transfer_delay must be positive")
        crashes = dict(self.replica_crash_times)
        max_index = plan.max_replica_index(self.replicas)
        join_times = {ev.replica: ev.at for ev in plan if ev.kind == "join"}
        for idx, t in crashes.items():
            if not 0 <= idx < max_index:
                raise ValueError(f"replica index {idx} out of range for {max_index}")
            if t < 0:
                raise ValueError(f"negative crash time {t} for replica {idx}")
            if idx >= self.replicas and t < join_times[idx]:
                raise ValueError(
                    f"replica {idx} crashes at t={t} before it joins at "
                    f"t={join_times[idx]}"
                )
        if not self.membership_plan:
            if len(crashes) > (self.replicas - 1) // 2:
                raise ValueError(
                    f"crashing {len(crashes)} of {self.replicas} replicas leaves no "
                    "majority; the emulation tolerates only a minority of crashes"
                )
        else:
            self._validate_crash_liveness(plan, crashes)

    def _validate_crash_liveness(
        self, plan: MembershipPlan, crashes: Dict[int, float]
    ) -> None:
        """Walk membership and crash timelines together: at every step
        the *current* member set must keep a live majority, or quorums
        (and the transitions themselves) become unreachable.  Transient
        fault-plan crashes are exempt, as for the static-membership
        check -- campaigns may probe stalls."""
        timeline: List[Tuple[float, int, str, int]] = [
            (ev.at, 0, ev.kind, ev.replica) for ev in plan
        ]
        timeline.extend((t, 1, "crash", idx) for idx, t in crashes.items())
        members: Set[int] = set(range(self.replicas))
        crashed: Set[int] = set()
        for at, _, kind, idx in sorted(timeline):
            if kind == "join":
                members.add(idx)
            elif kind == "leave":
                members.discard(idx)
            else:
                crashed.add(idx)
            if len(members & crashed) > (len(members) - 1) // 2:
                raise ValueError(
                    f"at t={at} the member set {sorted(members)} has no live "
                    "majority; membership plans must keep a quorum alive"
                )

    @property
    def majority(self) -> int:
        """Quorum size: any two majorities intersect."""
        return self.replicas // 2 + 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The plain-dict form (scenario kwargs, JSON payloads)."""
        return {
            "replicas": self.replicas,
            "links": self.links,
            "link_params": dict(self.link_params),
            "retry_interval": self.retry_interval,
            "retry_policy": self.retry_policy,
            "retry_cap": self.retry_cap,
            "retry_jitter": self.retry_jitter,
            "replica_crash_times": {str(i): t for i, t in self.replica_crash_times},
            "fault_plan": [ev.to_jsonable() for ev in self.fault_plan],
            "resync": self.resync,
            "membership_plan": [ev.to_jsonable() for ev in self.membership_plan],
            "transfer_delay": self.transfer_delay,
            "transition": self.transition,
            "consistency": self.consistency,
            "record_history": self.record_history,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EmulationConfig":
        """Build a config from the plain-dict form (inverse of
        :meth:`to_dict`; JSON string keys are re-intified)."""
        data = dict(payload)
        unknown = set(data) - {
            "replicas",
            "links",
            "link_params",
            "retry_interval",
            "retry_policy",
            "retry_cap",
            "retry_jitter",
            "replica_crash_times",
            "fault_plan",
            "resync",
            "membership_plan",
            "transfer_delay",
            "transition",
            "consistency",
            "record_history",
        }
        if unknown:
            raise ValueError(f"unknown emulation option(s): {sorted(unknown)}")
        crashes = data.get("replica_crash_times") or {}
        return cls(
            replicas=int(data.get("replicas", 3)),
            links=str(data.get("links", "sync")),
            link_params=tuple(sorted((data.get("link_params") or {}).items())),
            retry_interval=float(data.get("retry_interval", 20.0)),
            retry_policy=str(data.get("retry_policy", "fixed")),
            retry_cap=float(data.get("retry_cap", 160.0)),
            retry_jitter=float(data.get("retry_jitter", 0.25)),
            replica_crash_times=tuple(
                sorted((int(i), float(t)) for i, t in dict(crashes).items())
            ),
            fault_plan=tuple(
                FaultEvent.from_jsonable(ev) for ev in data.get("fault_plan") or ()
            ),
            resync=bool(data.get("resync", True)),
            membership_plan=tuple(
                MembershipEvent.from_jsonable(ev)
                for ev in data.get("membership_plan") or ()
            ),
            transfer_delay=float(data.get("transfer_delay", 150.0)),
            transition=str(data.get("transition", "dual-quorum")),
            consistency=str(data.get("consistency", "regular")),
            record_history=bool(data.get("record_history", False)),
        )


class ReplicaNode:
    """One replica: a ``{register: (timestamp, value)}`` store.

    Replicas are passive state machines -- they never initiate traffic,
    only answer queries and apply timestamped writes (monotonically:
    an older write arriving late never regresses the stored value).
    A crashed replica silently drops everything; a *recovering* replica
    (post-crash amnesia, pre-resync) applies and acks writes -- the
    timestamps make that safe -- but refuses to serve reads or to
    certify another replica's resync until its own quorum state-resync
    completes (the ``abd.sync`` round driven by
    :class:`EmulatedMemory`).
    """

    def __init__(self, index: int, initial: Dict[str, Tuple[Tuple[int, int], Any]]) -> None:
        self.index = index
        self.store: Dict[str, Tuple[Tuple[int, int], Any]] = dict(initial)
        self.crashed = False
        self.recovering = False
        self.writes_applied = 0
        self.reads_served = 0

    #: Node id on the wire: clients use their non-negative pid, so
    #: replicas live on the negative axis.
    @property
    def node_id(self) -> int:
        """The replica's address on the emulation network."""
        return -(self.index + 1)

    def handle(self, message: Message, network: Network, initial_of: Callable[[str], Tuple[Tuple[int, int], Any]]) -> None:
        """Serve one query or apply one timestamped write, then reply."""
        if self.crashed:
            return
        if message.kind == "abd.read":
            if self.recovering:
                return  # amnesiac state must not enter any read quorum
            op_id, name = message.payload
            ts, value = self.store.get(name) or initial_of(name)
            self.reads_served += 1
            network.send(self.node_id, message.sender, "abd.read-reply", (op_id, name, ts, value))
        elif message.kind == "abd.sync":
            if self.recovering:
                return  # cannot certify state it does not have itself
            (sync_id,) = message.payload
            network.send(
                self.node_id,
                message.sender,
                "abd.sync-reply",
                (sync_id, tuple(sorted(self.store.items()))),
            )
        elif message.kind == "abd.transfer":
            # A membership state transfer: the merged old-config state,
            # applied monotonically (timestamps arbitrate, so a write
            # this replica overheard during the window never regresses).
            # The grant carries a majority-of-old-config's worth of
            # state -- the same guarantee a resync provides -- so an
            # amnesiac joiner may start serving reads after applying it.
            transfer_id, entries = message.payload
            for name, (ts, value) in entries:
                current = self.store.get(name)
                if current is None or ts > current[0]:
                    self.store[name] = (ts, value)
            self.recovering = False
            network.send(self.node_id, message.sender, "abd.transfer-ack", (transfer_id,))
        elif message.kind == "abd.write":
            op_id, name, ts, value = message.payload
            current = self.store.get(name) or initial_of(name)
            if ts > current[0]:
                self.store[name] = (ts, value)
                self.writes_applied += 1
            # The ack echoes the value this replica received: it is the
            # quorum certificate's value entry, letting the writer
            # cross-check that the payload survived the wire (the
            # value-integrity detector; timestamps alone cannot see a
            # corrupted value travelling under a valid timestamp).
            network.send(
                self.node_id, message.sender, "abd.write-ack", (op_id, name, ts, value)
            )


class _PendingOp:
    """One in-flight quorum operation of one client process."""

    __slots__ = (
        "op_id",
        "pid",
        "register",
        "kind",
        "phase",
        "ts",
        "value",
        "amount",
        "replies",
        "best_ts",
        "best_value",
        "callback",
        "done",
        "retry_handle",
        "attempts",
        "started_at",
    )

    def __init__(
        self,
        op_id: int,
        pid: int,
        register: Any,
        kind: str,
        callback: Callable[[Any], None],
        started_at: float,
    ) -> None:
        self.op_id = op_id
        self.pid = pid
        self.register = register
        self.kind = kind  # "read" | "write" | "mwmr-write" | "fetch-add"
        self.phase = ""  # "query" | "write"
        self.ts: Tuple[int, int] = _INITIAL_TS
        self.value: Any = None
        self.amount = 0
        self.replies: Set[int] = set()
        self.best_ts: Tuple[int, int] = _INITIAL_TS
        self.best_value: Any = None
        self.callback = callback
        self.done = False
        self.retry_handle = None
        self.attempts = 0  # retransmission rounds fired (backoff exponent)
        self.started_at = started_at


class _ResyncState:
    """One in-flight recovery state-resync of one replica.

    The recovering replica broadcasts ``abd.sync`` and merges the
    ``(timestamp, value)`` snapshots it gets back; it rejoins read
    service once a majority of the *other* replicas replied.  Counting
    the recovering node itself toward its own quorum would be unsound
    (its state is amnesia), and a majority drawn from the others is
    what guarantees intersection with every completed write's quorum in
    at least one non-amnesiac replica.
    """

    __slots__ = ("sync_id", "node", "replies", "merged", "retry_handle", "done")

    def __init__(self, sync_id: int, node: ReplicaNode) -> None:
        self.sync_id = sync_id
        self.node = node
        self.replies: Set[int] = set()
        self.merged: Dict[str, Tuple[Tuple[int, int], Any]] = {}
        self.retry_handle = None
        self.done = False


class _TransferState:
    """One in-flight membership state-transfer round.

    Two phases: ``collect`` gathers ``(timestamp, value)`` snapshots
    (``abd.sync`` rounds, like a resync) from a majority of the **old**
    config -- which intersects every completed write's quorum, both the
    pre-window writes and the dual-quorum window writes -- then
    ``install`` pushes the merged state (``abd.transfer``) to every
    member of the **new** config and installs it once a majority of the
    new config acks.  Both phases retransmit to the targets yet to
    reply.
    """

    __slots__ = (
        "transfer_id",
        "coordinator",
        "phase",
        "replies",
        "acks",
        "merged",
        "retry_handle",
        "done",
    )

    def __init__(self, transfer_id: int) -> None:
        self.transfer_id = transfer_id
        self.coordinator = 0  # wire address the round's replies route to
        self.phase = "collect"  # "collect" | "install"
        self.replies: Set[int] = set()
        self.acks: Set[int] = set()
        self.merged: Dict[str, Tuple[Tuple[int, int], Any]] = {}
        self.retry_handle = None
        self.done = False


class EmulatedMemory(SharedMemory):
    """1WMR regular registers emulated by an ABD replica quorum.

    Drop-in :class:`~repro.memory.backend.MemoryBackend`: the namespace,
    access logs, censuses and snapshots are inherited from
    :class:`SharedMemory`.  The local register objects act as the
    *completed-state mirror* -- a register's local value is updated at
    the instant its write's quorum completes, so uncounted observer
    reads (``peek``, leader sampling, snapshots) and the write log see
    exactly the completed prefix of the emulated history.

    The asynchronous operation API (:meth:`emu_read`,
    :meth:`emu_write`, :meth:`emu_fetch_add`) is driven by
    :class:`~repro.core.runner.ProcessRuntime`, which blocks the issuing
    process until the completion callback fires.  :meth:`start` must
    run once at execution start (after scenario scrambling) to seed the
    replicas and schedule their crashes; ``Run.execute`` does this.

    Parameters
    ----------
    clock / log_reads:
        As for :class:`SharedMemory` (the read fast path is inherited).
    sim:
        The run's simulator; all protocol messages ride its event queue.
    rng:
        The run's RNG registry; link models draw per-link streams from
        it (the ``sync`` model draws nothing, keeping emulated runs
        stream-identical to shared-memory runs of the same seed).
    config:
        The :class:`EmulationConfig` knobs.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        sim: Simulator,
        rng: RngRegistry,
        config: Optional[EmulationConfig] = None,
        log_reads: bool = True,
    ) -> None:
        super().__init__(clock, log_reads=log_reads)
        self.config = config or EmulationConfig()
        self._sim = sim
        self._rng = rng
        self.network = Network(
            sim, _make_links(self.config.links, rng, dict(self.config.link_params))
        )
        self.network.install_delivery(self._on_delivery)
        self.replicas: List[ReplicaNode] = []
        self._initial: Dict[str, Tuple[Tuple[int, int], Any]] = {}
        self._write_counters: Dict[str, int] = {}
        self._ops: Dict[int, _PendingOp] = {}
        self._op_counter = 0
        self._sync_counter = 0
        self._resyncs: Dict[int, _ResyncState] = {}
        self._started = False
        # Membership state: the installed config, the proposed config of
        # an open transition window (None outside windows), the queue of
        # events waiting for the current transition to install, and the
        # in-flight state-transfer round.  ``_static_membership`` keeps
        # the quorum predicate on the two-int fast path for plans-free
        # runs (the overwhelmingly common case, and the byte-identity
        # contract with pre-membership releases).
        self.current_config = ReplicaConfig(0, tuple(range(self.config.replicas)))
        self.next_config: Optional[ReplicaConfig] = None
        self._static_membership = not self.config.membership_plan
        self._cur_members = self.current_config.member_set
        self._cur_majority = self.current_config.majority
        self._new_members = frozenset()
        self._new_majority = 0
        self._pending_membership: List[MembershipEvent] = []
        self._transfers: Dict[int, _TransferState] = {}
        self._serving: List[ReplicaNode] = []
        # Protocol statistics (per-run observability; see RunSummary).
        self.reads_completed = 0
        self.writes_completed = 0
        self.retransmissions = 0
        #: Transient replica recoveries applied from the fault plan.
        self.recoveries = 0
        #: Quorum state-resyncs completed by recovering replicas.
        self.resyncs = 0
        self.total_op_latency = 0.0
        #: Latency accumulated by read operations alone -- at the atomic
        #: consistency level this includes the write-back phase, which
        #: is exactly what the ``EMU_atomic`` bench prices.
        self.read_op_latency = 0.0
        #: Write-back phases run by atomic reads (0 at the regular level).
        self.write_backs = 0
        #: Write-acks whose echoed value disagreed with the value the
        #: write phase sent: on-the-wire value corruption caught by the
        #: quorum-certificate cross-check (one count per replica per
        #: phase; 0 on loss-free and corruption-free fabrics).
        self.integrity_violations = 0
        #: Reconfigurations installed (one per membership event whose
        #: transition window closed before the horizon).
        self.configs_installed = 0
        #: Operations completed while a dual-quorum transition window
        #: was open -- the ops that paid the two-config intersection
        #: discipline (0 in the broken ``single-config`` mode).
        self.dual_quorum_ops = 0
        #: Membership state-transfer rounds completed (collect + push).
        self.transfer_rounds = 0
        #: Completed-operation interval records (empty unless
        #: ``config.record_history``); see :meth:`recorded_history`.
        self.op_history: List[EmuOpRecord] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon: float) -> None:
        """Seed the replicas and schedule their crashes (run once).

        Called by ``Run.execute`` after layout creation and scenario
        scrambling, so replicas start from the registers' *actual*
        initial values (footnote 7's arbitrary-initial-value scenarios
        included).
        """
        if self._started:
            raise RuntimeError("emulation already started")
        self._started = True
        for reg in self.all_registers():
            self._initial[reg.name] = (_INITIAL_TS, reg.peek())
        self.replicas = [
            ReplicaNode(i, self._initial) for i in range(self.config.replicas)
        ]
        self._serving = list(self.replicas)
        for idx, t in self.config.replica_crash_times:
            if t <= horizon:
                if idx < len(self.replicas):
                    replica = self.replicas[idx]

                    def crash(node: ReplicaNode = replica) -> None:
                        self._crash_replica(node)

                    self._sim.schedule_at(t, crash, kind="replica-crash")
                else:
                    # A joiner's crash: the node does not exist yet, so
                    # resolve the index at fire time (config validation
                    # guarantees the join precedes the crash).
                    def crash_joiner(i: int = idx) -> None:
                        if i < len(self.replicas):
                            self._crash_replica(self.replicas[i])

                    self._sim.schedule_at(t, crash_joiner, kind="replica-crash")
        for ev in MembershipPlan(self.config.membership_plan):
            if ev.at > horizon:
                continue

            def fire(event: MembershipEvent = ev) -> None:
                self._on_membership_event(event)

            self._sim.schedule_at(ev.at, fire, kind="membership-event")
        self._apply_fault_plan(horizon)

    def _apply_fault_plan(self, horizon: float) -> None:
        """Arm the config's fault plan: replica events become scheduled
        closures; partition and storm windows compile into a
        :class:`~repro.netsim.network.PartitionScheduleLinks` overlay
        wrapping the configured link behaviour."""
        plan = FaultPlan(self.config.fault_plan)
        if not plan.events:
            return
        for ev in plan:
            if ev.at > horizon:
                continue
            if ev.kind == "replica-crash":
                replica = self.replicas[ev.replica]

                def crash(node: ReplicaNode = replica) -> None:
                    self._crash_replica(node)

                self._sim.schedule_at(ev.at, crash, kind="replica-crash")
            elif ev.kind == "replica-recover":
                replica = self.replicas[ev.replica]

                def recover(node: ReplicaNode = replica) -> None:
                    self._begin_recovery(node)

                self._sim.schedule_at(ev.at, recover, kind="replica-recover")
        partitions = plan.partition_windows(horizon)
        storms = plan.storm_windows(horizon)
        if partitions or storms:
            self.network.behavior = PartitionScheduleLinks(
                self.network.behavior, partitions=partitions, storms=storms
            )

    def _initial_of(self, name: str) -> Tuple[Tuple[int, int], Any]:
        """A register's seeded replica state (for post-start lookups)."""
        return self._initial.get(name, (_INITIAL_TS, 0))

    # ------------------------------------------------------------------
    # Crash, recovery and state-resync
    # ------------------------------------------------------------------
    def _crash_replica(self, node: ReplicaNode) -> None:
        """Crash ``node`` now, abandoning any resync it was running."""
        node.crashed = True
        node.recovering = False
        for sync_id, state in list(self._resyncs.items()):
            if state.node is node:
                state.done = True
                if state.retry_handle is not None:
                    state.retry_handle.cancel()
                del self._resyncs[sync_id]

    def _begin_recovery(self, node: ReplicaNode) -> None:
        """Recover ``node`` with amnesia; resync before serving reads.

        The crash wiped the replica's volatile store, so it restarts
        from *nothing* (not even the seeded initial values -- stale
        initial state is exactly the bug the resync exists to prevent).
        Under ``config.resync`` it applies and acks writes but refuses
        reads until :meth:`_on_sync_reply` merges a majority of the
        other replicas' snapshots; with ``resync=False`` (the broken
        mode for negative tests) it serves immediately out of amnesia.
        """
        if not node.crashed:
            return  # recover of a live replica is a no-op
        node.crashed = False
        node.store.clear()
        self.recoveries += 1
        if self.config.resync:
            node.recovering = True
            self._start_resync(node)

    def _start_resync(self, node: ReplicaNode) -> None:
        """Open a sync round for ``node`` (with retransmission)."""
        self._sync_counter += 1
        state = _ResyncState(self._sync_counter, node)
        self._resyncs[state.sync_id] = state

        def retry() -> None:
            if state.done:
                return
            self.retransmissions += 1
            self._broadcast_sync(state)
            state.retry_handle = self._sim.schedule_after_cancellable(
                self.config.retry_interval, retry, kind="abd-resync-retry", pid=node.node_id
            )

        self._broadcast_sync(state)
        state.retry_handle = self._sim.schedule_after_cancellable(
            self.config.retry_interval, retry, kind="abd-resync-retry", pid=node.node_id
        )

    def _broadcast_sync(self, state: _ResyncState) -> None:
        """(Re-)request snapshots from the replicas yet to reply.

        Targets are the *serving* set -- the installed config, or the
        union of both configs during a transition window -- so a resync
        racing a reconfiguration certifies against the same replicas
        quorum operations run against.
        """
        for replica in self._serving:
            if replica.index == state.node.index or replica.index in state.replies:
                continue
            self.network.send(
                state.node.node_id, replica.node_id, "abd.sync", (state.sync_id,)
            )

    def _on_sync_reply(self, message: Message) -> None:
        """Merge one snapshot; rejoin service on a majority of others.

        ``abd.sync`` rounds are shared with the membership state
        transfer (same snapshot request, same reply kind), so replies
        that belong to a transfer round route there by id.
        """
        sync_id, entries = message.payload
        state = self._resyncs.get(sync_id)
        if state is None:
            transfer = self._transfers.get(sync_id)
            if transfer is not None:
                self._on_transfer_snapshot(transfer, message)
            return  # else: late reply of an abandoned or completed round
        if state.done:
            return
        replica_index = -message.sender - 1
        if replica_index in state.replies:
            return
        state.replies.add(replica_index)
        for name, (ts, value) in entries:
            current = state.merged.get(name)
            if current is None or ts > current[0]:
                state.merged[name] = (ts, value)
        # A majority drawn from the OTHER replicas (the recovering
        # node's own state is amnesia, so counting itself would be
        # unsound): |replies| + |any completed write's quorum| exceeds
        # the replica count, so the merge sees every completed write
        # through at least one non-amnesiac holder.  Capped at the
        # other-replica count so the two-replica emulation (where the
        # single other replica holds every completed write) can finish.
        if not self._resync_quorum_met(state):
            return
        state.done = True
        if state.retry_handle is not None:
            state.retry_handle.cancel()
        del self._resyncs[sync_id]
        node = state.node
        # Merge without regressing writes the node already applied
        # while recovering (the timestamps arbitrate, as everywhere).
        for name, (ts, value) in state.merged.items():
            current = node.store.get(name)
            if current is None or ts > current[0]:
                node.store[name] = (ts, value)
        node.recovering = False
        self.resyncs += 1

    def _resync_quorum_met(self, state: _ResyncState) -> bool:
        """Completion predicate of a recovery resync.

        Static membership keeps the original count; under membership
        the certifying majority is drawn from the *current* config's
        other members -- and from the new config's too during a
        dual-quorum window, so a resync completing mid-transition is
        certified against both member sets its future readers may
        quorum with.
        """
        if self._static_membership:
            return len(state.replies) >= min(self.config.majority, len(self.replicas) - 1)
        node_index = state.node.index
        others = self._cur_members - {node_index}
        if len(state.replies & others) < min(self._cur_majority, len(others)):
            return False
        if self.next_config is None or self.config.transition == "single-config":
            return True
        new_others = self._new_members - {node_index}
        return len(state.replies & new_others) >= min(self._new_majority, len(new_others))

    @property
    def live_replicas(self) -> int:
        """Replicas that have not crashed yet."""
        return sum(1 for r in self.replicas if not r.crashed)

    # ------------------------------------------------------------------
    # Dynamic membership: transitions, dual quorums, state transfer
    # ------------------------------------------------------------------
    def _on_membership_event(self, event: MembershipEvent) -> None:
        """Queue one operator join/leave; transitions run one at a time."""
        self._pending_membership.append(event)
        self._maybe_begin_transition()

    def _maybe_begin_transition(self) -> None:
        """Open the next transition window, if none is in flight.

        A join creates the new replica node *now*, as an amnesiac (it
        applies and acks window writes -- timestamps make that safe --
        but refuses reads until the state transfer lands); a leave only
        shrinks the proposed member set, the node itself stays up so
        late window quorums can still count it.  The state transfer is
        scheduled ``transfer_delay`` later, which is how long the
        dual-quorum window stays open.
        """
        if self.next_config is not None or not self._pending_membership:
            return
        event = self._pending_membership.pop(0)
        members = set(self.current_config.members)
        if event.kind == "join":
            while len(self.replicas) <= event.replica:
                node = ReplicaNode(len(self.replicas), {})
                node.recovering = True
                self.replicas.append(node)
            members.add(event.replica)
        else:
            members.discard(event.replica)
        self.next_config = ReplicaConfig(
            self.current_config.config_id + 1, tuple(sorted(members))
        )
        self._refresh_quorum_state()
        expected = self.next_config.config_id

        def begin(config_id: int = expected) -> None:
            if self.next_config is not None and self.next_config.config_id == config_id:
                self._begin_transfer()

        self._sim.schedule_after(
            self.config.transfer_delay, begin, kind="membership-transfer"
        )

    def _refresh_quorum_state(self) -> None:
        """Recompute the cached member sets and the broadcast targets.

        Outside a window the serving set is the installed config; during
        a dual-quorum window it is the **union** of both configs (reads
        take the max timestamp across both, writes ack in both).  The
        broken ``single-config`` mode keeps broadcasting to the old
        config only -- the writer pretends the new config does not exist
        yet, which is exactly the bug the negative control pins.
        """
        self._cur_members = self.current_config.member_set
        self._cur_majority = self.current_config.majority
        nxt = self.next_config
        if nxt is None:
            self._new_members = frozenset()
            self._new_majority = 0
            serving: Tuple[int, ...] = self.current_config.members
        else:
            self._new_members = nxt.member_set
            self._new_majority = nxt.majority
            if self.config.transition == "single-config":
                serving = self.current_config.members
            else:
                serving = tuple(sorted(self._cur_members | self._new_members))
        self._serving = [self.replicas[i] for i in serving]

    def _quorum_met(self, replies: Set[int]) -> bool:
        """The completion predicate of every quorum phase.

        Static membership keeps the original two-int comparison (the
        hot path, and the byte-identity contract).  During a dual-quorum
        transition window a phase completes only when its replies
        contain a majority of **both** the old and the new config --
        any quorum drawn from either adjacent config intersects it, so
        reads see every completed write and writes survive the install.
        """
        if self._static_membership:
            return len(replies) >= self.config.majority
        if len(replies & self._cur_members) < self._cur_majority:
            return False
        if self.next_config is None or self.config.transition == "single-config":
            return True
        return len(replies & self._new_members) >= self._new_majority

    def _begin_transfer(self) -> None:
        """Close the window: state-transfer round, then install."""
        nxt = self.next_config
        if nxt is None:
            return
        if self.config.transition == "single-config":
            # BROKEN negative control: install without a state transfer.
            # Joiners start serving reads out of whatever they happened
            # to overhear -- for any register not rewritten since the
            # join that is the seeded initial value, which the history
            # audit must flag the moment a quorum is all-joiners.
            for idx in nxt.members:
                node = self.replicas[idx]
                if node.recovering:
                    node.recovering = False
            self._install_config()
            return
        self._sync_counter += 1
        state = _TransferState(self._sync_counter)
        state.coordinator = -(min(nxt.members) + 1)
        self._transfers[state.transfer_id] = state

        def retry() -> None:
            if state.done:
                return
            self.retransmissions += 1
            self._broadcast_transfer(state)
            state.retry_handle = self._sim.schedule_after_cancellable(
                self.config.retry_interval,
                retry,
                kind="abd-transfer-retry",
                pid=state.coordinator,
            )

        self._broadcast_transfer(state)
        state.retry_handle = self._sim.schedule_after_cancellable(
            self.config.retry_interval,
            retry,
            kind="abd-transfer-retry",
            pid=state.coordinator,
        )

    def _broadcast_transfer(self, state: _TransferState) -> None:
        """(Re-)send the transfer's current phase to unreplied targets."""
        if state.phase == "collect":
            for idx in self.current_config.members:
                if idx in state.replies:
                    continue
                self.network.send(
                    state.coordinator, -(idx + 1), "abd.sync", (state.transfer_id,)
                )
        else:
            entries = tuple(sorted(state.merged.items()))
            nxt = self.next_config
            for idx in nxt.members if nxt is not None else ():
                if idx in state.acks:
                    continue
                self.network.send(
                    state.coordinator,
                    -(idx + 1),
                    "abd.transfer",
                    (state.transfer_id, entries),
                )

    def _on_transfer_snapshot(self, state: _TransferState, message: Message) -> None:
        """Merge one old-config snapshot; push once a majority replied."""
        if state.done or state.phase != "collect":
            return
        _, entries = message.payload
        replica_index = -message.sender - 1
        if replica_index in state.replies:
            return
        state.replies.add(replica_index)
        for name, (ts, value) in entries:
            current = state.merged.get(name)
            if current is None or ts > current[0]:
                state.merged[name] = (ts, value)
        # A majority of the OLD config intersects every completed
        # write's quorum (pre-window writes by old-majority quorums,
        # window writes because dual quorums contain an old majority),
        # so the merge holds the freshest completed state.
        if len(state.replies & self._cur_members) < self._cur_majority:
            return
        state.phase = "install"
        self._broadcast_transfer(state)

    def _on_transfer_ack(self, message: Message) -> None:
        """Count one install ack; install on a majority of the new config."""
        transfer_id = message.payload[0]
        state = self._transfers.get(transfer_id)
        if state is None or state.done or state.phase != "install":
            return
        replica_index = -message.sender - 1
        if replica_index in state.acks:
            return
        state.acks.add(replica_index)
        nxt = self.next_config
        if nxt is None or len(state.acks & nxt.member_set) < nxt.majority:
            return
        state.done = True
        if state.retry_handle is not None:
            state.retry_handle.cancel()
        del self._transfers[transfer_id]
        self.transfer_rounds += 1
        self._install_config()

    def _install_config(self) -> None:
        """Install the proposed config and garbage-collect the old one.

        From this instant quorums are drawn from the new config alone;
        members of the old config that left stop being broadcast to.
        Any queued membership event opens its window immediately.
        """
        if self.next_config is None:
            return
        self.current_config = self.next_config
        self.next_config = None
        self.configs_installed += 1
        self._refresh_quorum_state()
        self._maybe_begin_transition()

    # ------------------------------------------------------------------
    # Operation-history recorder
    # ------------------------------------------------------------------
    def _record(self, op: _PendingOp, kind: str, ts: Tuple[int, int], value: Any) -> None:
        """Append one completed-operation interval record (if recording)."""
        if self.config.record_history:
            self.op_history.append(
                EmuOpRecord(
                    op_id=op.op_id,
                    kind=kind,
                    pid=op.pid,
                    register=op.register.name,
                    ts=ts,
                    value=value,
                    inv=op.started_at,
                    resp=self._clock(),
                )
            )

    def recorded_history(self) -> List[EmuOpRecord]:
        """The auditable interval history of this run.

        Completed operations in completion order, plus every write
        still in its write phase when the run ended (reported with
        ``resp = math.inf``): a concurrent read may legitimately have
        returned such a write's timestamp, so the checkers must see the
        write exist.  Reads and query-phase writes that never completed
        returned nothing and are omitted.  Empty unless the config set
        ``record_history``.
        """
        records = list(self.op_history)
        if self.config.record_history:
            for op in self._ops.values():
                if op.kind != "read" and op.phase == "write":
                    records.append(
                        EmuOpRecord(
                            op_id=op.op_id,
                            kind="write",
                            pid=op.pid,
                            register=op.register.name,
                            ts=op.ts,
                            value=op.value,
                            inv=op.started_at,
                            resp=math.inf,
                        )
                    )
        return records

    # ------------------------------------------------------------------
    # Asynchronous operation API (driven by the process runtime)
    # ------------------------------------------------------------------
    def emu_read(self, pid: int, register: Any, callback: Callable[[Any], None]) -> None:
        """Start a quorum read; ``callback(value)`` fires at completion."""
        op = self._new_op(pid, register, "read", callback)
        self._enter_query(op)

    def emu_write(
        self, pid: int, register: Any, value: Any, callback: Callable[[Any], None]
    ) -> None:
        """Start a quorum write; ``callback(None)`` fires at completion.

        Ownership is checked *synchronously* at invocation (exactly like
        the shared backend), so an illegal write raises
        :class:`~repro.memory.register.OwnershipError` in the issuing
        process's step rather than completing remotely.
        """
        owner = getattr(register, "owner", None)
        if isinstance(register, AtomicRegister) and owner is not None and pid != owner:
            raise OwnershipError(
                f"process {pid} attempted to write {register.name} owned by {owner}"
            )
        if isinstance(register, MultiWriterRegister):
            op = self._new_op(pid, register, "mwmr-write", callback)
            op.value = value
            self._enter_query(op)  # learn the current max timestamp first
        else:
            op = self._new_op(pid, register, "write", callback)
            op.value = value
            counter = self._write_counters.get(register.name, 0) + 1
            self._write_counters[register.name] = counter
            self._enter_write(op, (counter, pid))

    def emu_fetch_add(
        self, pid: int, register: MultiWriterRegister, amount: int, callback: Callable[[Any], None]
    ) -> None:
        """Start an emulated fetch&add; ``callback(old_value)`` at completion.

        ABD registers offer only read and write, so fetch&add degrades
        to the racy two-step emulation (query the value, write value +
        amount): concurrent increments may be lost.  The Section 3.5
        variant is documented to tolerate exactly this.
        """
        op = self._new_op(pid, register, "fetch-add", callback)
        op.amount = amount
        self._enter_query(op)

    # ------------------------------------------------------------------
    # Protocol phases
    # ------------------------------------------------------------------
    def _new_op(
        self, pid: int, register: Any, kind: str, callback: Callable[[Any], None]
    ) -> _PendingOp:
        if not self._started:
            # Without replicas the phase would broadcast to nobody and
            # the operation would hang forever; fail loudly instead.
            raise RuntimeError(
                "emulation not started: call start() before issuing operations "
                "(Run.execute does this)"
            )
        self._op_counter += 1
        op = _PendingOp(self._op_counter, pid, register, kind, callback, self._clock())
        self._ops[op.op_id] = op
        return op

    def _enter_query(self, op: _PendingOp) -> None:
        op.phase = "query"
        op.replies = set()
        op.best_ts, op.best_value = self._initial_of(op.register.name)
        self._broadcast_phase(op)
        self._arm_retry(op)

    def _enter_write(self, op: _PendingOp, ts: Tuple[int, int]) -> None:
        op.phase = "write"
        op.ts = ts
        op.replies = set()
        self._broadcast_phase(op)
        if op.retry_handle is None:  # direct writes skip the query phase
            self._arm_retry(op)

    def _broadcast_phase(self, op: _PendingOp) -> None:
        """(Re-)send the current phase's message to unacked replicas.

        The target set is the membership *serving* set: the installed
        config's members, or the union of both configs during a
        dual-quorum transition window (so reads can take the max
        timestamp across both and writes can ack in both).  Retries
        re-evaluate it, so an operation in flight across an install
        follows the config change.
        """
        name = op.register.name
        for replica in self._serving:
            if replica.index in op.replies:
                continue
            if op.phase == "query":
                self.network.send(op.pid, replica.node_id, "abd.read", (op.op_id, name))
            else:
                self.network.send(
                    op.pid, replica.node_id, "abd.write", (op.op_id, name, op.ts, op.value)
                )

    def _retry_delay(self, op: _PendingOp) -> float:
        """Delay before ``op``'s next retransmission round.

        ``fixed`` returns the constant interval and draws **no**
        randomness, so default-config runs stay byte-identical to
        pre-backoff releases; ``backoff`` doubles per round up to
        ``retry_cap`` and scales by seeded per-client jitter.
        """
        if self.config.retry_policy == "fixed":
            return self.config.retry_interval
        delay = min(
            self.config.retry_interval * (2.0 ** op.attempts), self.config.retry_cap
        )
        if self.config.retry_jitter:
            stream = self._rng.stream(f"abd-retry:{op.pid}")
            delay *= 1.0 + self.config.retry_jitter * stream.random()
        return delay

    def _arm_retry(self, op: _PendingOp) -> None:
        def retry() -> None:
            if op.done:
                return
            self.retransmissions += 1
            op.attempts += 1
            self._broadcast_phase(op)
            op.retry_handle = self._sim.schedule_after_cancellable(
                self._retry_delay(op), retry, kind="abd-retry", pid=op.pid
            )

        op.retry_handle = self._sim.schedule_after_cancellable(
            self._retry_delay(op), retry, kind="abd-retry", pid=op.pid
        )

    def _finish(self, op: _PendingOp, result: Any) -> None:
        op.done = True
        if op.retry_handle is not None:
            op.retry_handle.cancel()
        del self._ops[op.op_id]
        if self.next_config is not None and self.config.transition == "dual-quorum":
            self.dual_quorum_ops += 1
        self.total_op_latency += self._clock() - op.started_at
        op.callback(result)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_delivery(self, message: Message) -> None:
        if message.kind == "abd.sync-reply":
            # Resync replies address the recovering *replica* (negative
            # receiver), but the round's state machine lives here -- so
            # route by kind before the replica dispatch.  Membership
            # state-transfer collections share the reply kind and route
            # by round id inside the handler.
            self._on_sync_reply(message)
            return
        if message.kind == "abd.transfer-ack":
            # Install acks address the transfer coordinator (negative
            # receiver); the round's state machine also lives here.
            self._on_transfer_ack(message)
            return
        if message.receiver < 0:
            self.replicas[-message.receiver - 1].handle(
                message, self.network, self._initial_of
            )
            return
        op = self._ops.get(message.payload[0])
        if op is None or op.done:
            return  # late ack of a completed phase
        if message.kind == "abd.read-reply":
            self._on_read_reply(op, message)
        elif message.kind == "abd.write-ack":
            self._on_write_ack(op, message)

    def _on_read_reply(self, op: _PendingOp, message: Message) -> None:
        if op.phase != "query":
            return
        _, name, ts, value = message.payload
        replica_index = -message.sender - 1
        if replica_index in op.replies:
            return
        op.replies.add(replica_index)
        if ts > op.best_ts:
            op.best_ts, op.best_value = ts, value
        if not self._quorum_met(op.replies):
            return
        if op.kind == "read":
            if self.config.consistency == "atomic":
                # ABD write-back: propagate the (timestamp, value) this
                # read is about to return to a majority first, so no
                # later read can see an older value (atomicity).
                self.write_backs += 1
                op.value = op.best_value
                self._enter_write(op, op.best_ts)
            else:
                self._complete_read(op)
        elif op.kind == "mwmr-write":
            self._enter_write(op, (op.best_ts[0] + 1, op.pid))
        else:  # fetch-add: write value + amount, return the old value
            op.value = op.best_value + op.amount
            self._enter_write(op, (op.best_ts[0] + 1, op.pid))

    def _on_write_ack(self, op: _PendingOp, message: Message) -> None:
        _, name, ts, value = message.payload
        if op.phase != "write" or ts != op.ts:
            return
        replica_index = -message.sender - 1
        if replica_index not in op.replies and value != op.value:
            # The replica echoed back a value other than the one this
            # write phase is propagating: the payload was corrupted on
            # the wire (in either direction).  Detection only -- the ack
            # still counts toward the quorum, mirroring how the paper's
            # protocol has no integrity defence; the counter and the
            # history audit make the corruption visible.
            self.integrity_violations += 1
        op.replies.add(replica_index)
        if not self._quorum_met(op.replies):
            return
        if op.kind == "read":  # an atomic read's write-back completed
            self._complete_read(op)
        else:
            self._complete_write(op)

    # ------------------------------------------------------------------
    # Completions (the linearization points of the emulated history)
    # ------------------------------------------------------------------
    def _complete_read(self, op: _PendingOp) -> None:
        register = op.register
        self._note_read(register.name, op.pid)
        if isinstance(register, AtomicRegister):
            register._reads += 1  # keep the per-register counter exact
        self.reads_completed += 1
        self.read_op_latency += self._clock() - op.started_at
        self._record(op, "read", op.best_ts, op.best_value)
        self._finish(op, op.best_value)

    def _complete_write(self, op: _PendingOp) -> None:
        register = op.register
        self.writes_completed += 1
        if op.kind == "fetch-add":
            # One counted read + one counted write, like the shared
            # fetch&add; the local mirror takes the written value.
            self._note_read(register.name, op.pid)
            register.poke(op.value)
            self._note_write(register.name, op.pid, op.value, critical=register.critical)
            self._record(op, "read", op.best_ts, op.best_value)
            self._record(op, "write", op.ts, op.value)
            self._finish(op, op.value - op.amount)
        else:
            register.write(op.pid, op.value)  # mirror + accounting + owner check
            self._record(op, "write", op.ts, op.value)
            self._finish(op, None)


__all__ = [
    "CONSISTENCY_LEVELS",
    "EmuOpRecord",
    "EmulatedMemory",
    "EmulationConfig",
    "LINK_MODELS",
    "MembershipEvent",
    "MembershipPlan",
    "RETRY_POLICIES",
    "ReplicaConfig",
    "ReplicaNode",
    "TRANSITION_MODES",
]
