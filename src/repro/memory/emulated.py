"""ABD-style quorum emulation of the paper's registers over messages.

The paper assumes 1WMR *regular* registers as a primitive.  Deployments
without physical shared memory (the cluster the paper's Section 1
motivates next to the SAN) must **emulate** those registers over
message passing.  This module implements the classic
Attiya-Bar-Noy-Dolev construction on top of :mod:`repro.netsim`:

* the register namespace is replicated across ``m`` replica nodes, each
  holding a ``(timestamp, value)`` pair per register;
* a **write** stamps the value with the writer's next timestamp,
  broadcasts it to every replica and completes on a majority of acks;
* a **read** queries every replica and completes on a majority of
  replies, returning the value with the largest timestamp.

Any two majorities intersect, so a read that starts after a write
completed sees it; a read concurrent with a write may return either
value -- exactly the *regular* register the paper requires (single
writer per register makes the read write-back phase of atomic ABD
unnecessary).  Multi-writer registers (the Section 3.5 variant) use
``(counter, pid)`` timestamps with a query phase before the write
phase; their ``fetch&add`` becomes the racy two-step
read-then-write emulation, which the variant is documented to tolerate
(lost increments only slow suspicion growth).

**Consistency levels** (``EmulationConfig.consistency``): the default
``"regular"`` level is the single-phase read above -- all the paper
needs.  The ``"atomic"`` level adds the classic ABD **write-back
phase**: before returning, a read propagates the ``(timestamp, value)``
it is about to return to a majority of replicas, which closes the
new/old-inversion window and upgrades the register to Lamport's
*atomic* level (both for the 1WMR registers and for the
``(counter, pid)``-stamped multi-writer path).  With the per-operation
history recorder on (``record_history``), the interval-order checkers
in :mod:`repro.memory.linearizability` audit the run: atomic histories
must be linearizable, regular histories must satisfy regularity --
and :mod:`repro.memory.anomaly` pins a deterministic schedule where
the two levels genuinely diverge.

The emulation tolerates crashes of **up to a minority** of replicas and
message loss (pending phases retransmit to unacked replicas every
``retry_interval``).  Link timing/loss is pluggable through the
:data:`LINK_MODELS` registry over the :mod:`repro.netsim.network`
behaviours -- including the PR 2 adversaries (GST ramps, fair loss).

:class:`EmulatedMemory` subclasses
:class:`~repro.memory.memory.SharedMemory`: the namespace, the access
logs, the window queries and the no-log read fast path are all
inherited, so every theorem monitor, census and report in the repo
consumes emulated runs unchanged.  What changes is the *operation
semantics*: reads and writes become asynchronous phases, driven by the
process runtime (:mod:`repro.core.runner`), which blocks the issuing
process until its quorum completes -- operations are intervals, like
the SAN disk model, but realized by an actual replicated protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.memory.memory import SharedMemory
from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister, OwnershipError
from repro.netsim.network import (
    ChannelBehavior,
    CorruptingLinks,
    DuplicatingLinks,
    FairLossyLinks,
    Message,
    Network,
    RampLinks,
    SynchronousLinks,
    TimelyLinks,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

#: Timestamp ordering is lexicographic on ``(counter, pid)``; the
#: initial replica state predates every real write.
_INITIAL_TS: Tuple[int, int] = (0, -1)

#: The consistency levels the emulation can provide (Lamport's
#: hierarchy): ``regular`` is the single-phase read the paper needs,
#: ``atomic`` adds the ABD write-back phase to every read.
CONSISTENCY_LEVELS: Tuple[str, ...] = ("regular", "atomic")


@dataclass(frozen=True, slots=True)
class EmuOpRecord:
    """One completed (or still-pending) emulated operation.

    The interval shape mirrors :class:`~repro.memory.disk.DiskOpRecord`
    -- invocation and response times plus the identity of the value
    involved -- but the value identity is the protocol's own
    ``(counter, pid)`` timestamp instead of a disk-side version counter
    (timestamps also cover the multi-writer path, where per-register
    version numbers are not unique).  ``ts`` is the timestamp the
    operation wrote, or the one whose value a read returned;
    :data:`_INITIAL_TS` denotes the pre-run initial value.  A write
    still in flight when the run ends is reported with
    ``resp = math.inf`` (invoked, never responded).
    """

    op_id: int
    kind: str  # "read" | "write"
    pid: int
    register: str
    ts: Tuple[int, int]
    value: Any
    inv: float
    resp: float


def _make_links(name: str, rng: RngRegistry, params: Mapping[str, Any]) -> ChannelBehavior:
    """Instantiate a link model by registry name with keyword ``params``."""
    try:
        factory = LINK_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown emulation link model {name!r}; choose from {sorted(LINK_MODELS)}"
        ) from None
    return factory(rng, dict(params))


#: Link-model name -> ``(rng, params) -> ChannelBehavior`` factory.
#: ``sync`` draws no randomness at all, which is what makes the
#: backend-equivalence tests exact; the others re-use the netsim
#: behaviours (``gst-ramp`` is the PR 2 adversary ported to links).
#: ``corruption`` and ``duplication`` are the mutating-fault adversaries
#: over synchronous timing (``delta`` plus a mutation ``rate``): the
#: emulation must *survive* duplication (timestamp application is
#: idempotent) but is expected to *fail* the Theorem 1 audit under
#: value corruption -- the negative-scenario family.
LINK_MODELS: Dict[str, Callable[[RngRegistry, Dict[str, Any]], ChannelBehavior]] = {
    "sync": lambda rng, p: SynchronousLinks(**p),
    "timely": lambda rng, p: TimelyLinks(rng, **p),
    "lossy": lambda rng, p: FairLossyLinks(rng, **p),
    "gst-ramp": lambda rng, p: RampLinks(rng, **p),
    "corruption": lambda rng, p: CorruptingLinks(
        SynchronousLinks(p.pop("delta", 0.25)), rng, **p
    ),
    "duplication": lambda rng, p: DuplicatingLinks(
        SynchronousLinks(p.pop("delta", 0.25)), rng, **p
    ),
}


@dataclass(frozen=True)
class EmulationConfig:
    """Plain-data knobs of one register emulation.

    Every field is JSON-serializable (ints, floats, strings, flat
    dicts), so configs travel inside scenario-factory kwargs through
    the parallel engine's content-hashed specs.

    Parameters
    ----------
    replicas:
        Number of replica nodes holding the register copies; quorums
        are majorities, so the emulation tolerates
        ``(replicas - 1) // 2`` replica crashes.
    links:
        Link-model name from :data:`LINK_MODELS`.
    link_params:
        Keyword arguments for the link model (e.g. ``{"delta": 0.25}``
        for ``sync``, ``{"loss": 0.1}`` for ``lossy``).
    retry_interval:
        Retransmission period for pending phases (loss tolerance; with
        loss-free link models the retransmit timers arm but never win).
    replica_crash_times:
        ``{replica index: crash time}`` -- crash-stop for replicas.
        Must leave a majority alive or quorums become unreachable.
    consistency:
        Consistency level of the emulated registers
        (:data:`CONSISTENCY_LEVELS`): ``"regular"`` -- single-phase
        reads, all the paper needs -- or ``"atomic"`` -- every read
        runs a second write-back phase propagating the returned
        ``(timestamp, value)`` to a majority before responding.
    record_history:
        Keep the per-operation interval history
        (:class:`EmuOpRecord`) so the run can be audited by the
        interval-order checkers in
        :mod:`repro.memory.linearizability`.  Off by default: the
        recorder is observability, not protocol, and perf profiles
        must not pay for it.
    """

    replicas: int = 3
    links: str = "sync"
    link_params: Tuple[Tuple[str, Any], ...] = ()
    retry_interval: float = 20.0
    replica_crash_times: Tuple[Tuple[int, float], ...] = ()
    consistency: str = "regular"
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ValueError("need at least two replicas for a meaningful quorum")
        if self.links not in LINK_MODELS:
            raise ValueError(
                f"unknown link model {self.links!r}; choose from {sorted(LINK_MODELS)}"
            )
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency level {self.consistency!r}; "
                f"choose from {list(CONSISTENCY_LEVELS)}"
            )
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        crashes = dict(self.replica_crash_times)
        for idx, t in crashes.items():
            if not 0 <= idx < self.replicas:
                raise ValueError(f"replica index {idx} out of range for {self.replicas}")
            if t < 0:
                raise ValueError(f"negative crash time {t} for replica {idx}")
        if len(crashes) > (self.replicas - 1) // 2:
            raise ValueError(
                f"crashing {len(crashes)} of {self.replicas} replicas leaves no "
                "majority; the emulation tolerates only a minority of crashes"
            )

    @property
    def majority(self) -> int:
        """Quorum size: any two majorities intersect."""
        return self.replicas // 2 + 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The plain-dict form (scenario kwargs, JSON payloads)."""
        return {
            "replicas": self.replicas,
            "links": self.links,
            "link_params": dict(self.link_params),
            "retry_interval": self.retry_interval,
            "replica_crash_times": {str(i): t for i, t in self.replica_crash_times},
            "consistency": self.consistency,
            "record_history": self.record_history,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EmulationConfig":
        """Build a config from the plain-dict form (inverse of
        :meth:`to_dict`; JSON string keys are re-intified)."""
        data = dict(payload)
        unknown = set(data) - {
            "replicas",
            "links",
            "link_params",
            "retry_interval",
            "replica_crash_times",
            "consistency",
            "record_history",
        }
        if unknown:
            raise ValueError(f"unknown emulation option(s): {sorted(unknown)}")
        crashes = data.get("replica_crash_times") or {}
        return cls(
            replicas=int(data.get("replicas", 3)),
            links=str(data.get("links", "sync")),
            link_params=tuple(sorted((data.get("link_params") or {}).items())),
            retry_interval=float(data.get("retry_interval", 20.0)),
            replica_crash_times=tuple(
                sorted((int(i), float(t)) for i, t in dict(crashes).items())
            ),
            consistency=str(data.get("consistency", "regular")),
            record_history=bool(data.get("record_history", False)),
        )


class ReplicaNode:
    """One replica: a ``{register: (timestamp, value)}`` store.

    Replicas are passive state machines -- they never initiate traffic,
    only answer queries and apply timestamped writes (monotonically:
    an older write arriving late never regresses the stored value).
    Crash-stop: a crashed replica silently drops everything.
    """

    def __init__(self, index: int, initial: Dict[str, Tuple[Tuple[int, int], Any]]) -> None:
        self.index = index
        self.store: Dict[str, Tuple[Tuple[int, int], Any]] = dict(initial)
        self.crashed = False
        self.writes_applied = 0
        self.reads_served = 0

    #: Node id on the wire: clients use their non-negative pid, so
    #: replicas live on the negative axis.
    @property
    def node_id(self) -> int:
        """The replica's address on the emulation network."""
        return -(self.index + 1)

    def handle(self, message: Message, network: Network, initial_of: Callable[[str], Tuple[Tuple[int, int], Any]]) -> None:
        """Serve one query or apply one timestamped write, then reply."""
        if self.crashed:
            return
        if message.kind == "abd.read":
            op_id, name = message.payload
            ts, value = self.store.get(name) or initial_of(name)
            self.reads_served += 1
            network.send(self.node_id, message.sender, "abd.read-reply", (op_id, name, ts, value))
        elif message.kind == "abd.write":
            op_id, name, ts, value = message.payload
            current = self.store.get(name) or initial_of(name)
            if ts > current[0]:
                self.store[name] = (ts, value)
                self.writes_applied += 1
            # The ack echoes the value this replica received: it is the
            # quorum certificate's value entry, letting the writer
            # cross-check that the payload survived the wire (the
            # value-integrity detector; timestamps alone cannot see a
            # corrupted value travelling under a valid timestamp).
            network.send(
                self.node_id, message.sender, "abd.write-ack", (op_id, name, ts, value)
            )


class _PendingOp:
    """One in-flight quorum operation of one client process."""

    __slots__ = (
        "op_id",
        "pid",
        "register",
        "kind",
        "phase",
        "ts",
        "value",
        "amount",
        "replies",
        "best_ts",
        "best_value",
        "callback",
        "done",
        "retry_handle",
        "started_at",
    )

    def __init__(
        self,
        op_id: int,
        pid: int,
        register: Any,
        kind: str,
        callback: Callable[[Any], None],
        started_at: float,
    ) -> None:
        self.op_id = op_id
        self.pid = pid
        self.register = register
        self.kind = kind  # "read" | "write" | "mwmr-write" | "fetch-add"
        self.phase = ""  # "query" | "write"
        self.ts: Tuple[int, int] = _INITIAL_TS
        self.value: Any = None
        self.amount = 0
        self.replies: Set[int] = set()
        self.best_ts: Tuple[int, int] = _INITIAL_TS
        self.best_value: Any = None
        self.callback = callback
        self.done = False
        self.retry_handle = None
        self.started_at = started_at


class EmulatedMemory(SharedMemory):
    """1WMR regular registers emulated by an ABD replica quorum.

    Drop-in :class:`~repro.memory.backend.MemoryBackend`: the namespace,
    access logs, censuses and snapshots are inherited from
    :class:`SharedMemory`.  The local register objects act as the
    *completed-state mirror* -- a register's local value is updated at
    the instant its write's quorum completes, so uncounted observer
    reads (``peek``, leader sampling, snapshots) and the write log see
    exactly the completed prefix of the emulated history.

    The asynchronous operation API (:meth:`emu_read`,
    :meth:`emu_write`, :meth:`emu_fetch_add`) is driven by
    :class:`~repro.core.runner.ProcessRuntime`, which blocks the issuing
    process until the completion callback fires.  :meth:`start` must
    run once at execution start (after scenario scrambling) to seed the
    replicas and schedule their crashes; ``Run.execute`` does this.

    Parameters
    ----------
    clock / log_reads:
        As for :class:`SharedMemory` (the read fast path is inherited).
    sim:
        The run's simulator; all protocol messages ride its event queue.
    rng:
        The run's RNG registry; link models draw per-link streams from
        it (the ``sync`` model draws nothing, keeping emulated runs
        stream-identical to shared-memory runs of the same seed).
    config:
        The :class:`EmulationConfig` knobs.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        sim: Simulator,
        rng: RngRegistry,
        config: Optional[EmulationConfig] = None,
        log_reads: bool = True,
    ) -> None:
        super().__init__(clock, log_reads=log_reads)
        self.config = config or EmulationConfig()
        self._sim = sim
        self.network = Network(
            sim, _make_links(self.config.links, rng, dict(self.config.link_params))
        )
        self.network.install_delivery(self._on_delivery)
        self.replicas: List[ReplicaNode] = []
        self._initial: Dict[str, Tuple[Tuple[int, int], Any]] = {}
        self._write_counters: Dict[str, int] = {}
        self._ops: Dict[int, _PendingOp] = {}
        self._op_counter = 0
        self._started = False
        # Protocol statistics (per-run observability; see RunSummary).
        self.reads_completed = 0
        self.writes_completed = 0
        self.retransmissions = 0
        self.total_op_latency = 0.0
        #: Latency accumulated by read operations alone -- at the atomic
        #: consistency level this includes the write-back phase, which
        #: is exactly what the ``EMU_atomic`` bench prices.
        self.read_op_latency = 0.0
        #: Write-back phases run by atomic reads (0 at the regular level).
        self.write_backs = 0
        #: Write-acks whose echoed value disagreed with the value the
        #: write phase sent: on-the-wire value corruption caught by the
        #: quorum-certificate cross-check (one count per replica per
        #: phase; 0 on loss-free and corruption-free fabrics).
        self.integrity_violations = 0
        #: Completed-operation interval records (empty unless
        #: ``config.record_history``); see :meth:`recorded_history`.
        self.op_history: List[EmuOpRecord] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon: float) -> None:
        """Seed the replicas and schedule their crashes (run once).

        Called by ``Run.execute`` after layout creation and scenario
        scrambling, so replicas start from the registers' *actual*
        initial values (footnote 7's arbitrary-initial-value scenarios
        included).
        """
        if self._started:
            raise RuntimeError("emulation already started")
        self._started = True
        for reg in self.all_registers():
            self._initial[reg.name] = (_INITIAL_TS, reg.peek())
        self.replicas = [
            ReplicaNode(i, self._initial) for i in range(self.config.replicas)
        ]
        for idx, t in self.config.replica_crash_times:
            if t <= horizon:
                replica = self.replicas[idx]

                def crash(node: ReplicaNode = replica) -> None:
                    node.crashed = True

                self._sim.schedule_at(t, crash, kind="replica-crash")

    def _initial_of(self, name: str) -> Tuple[Tuple[int, int], Any]:
        """A register's seeded replica state (for post-start lookups)."""
        return self._initial.get(name, (_INITIAL_TS, 0))

    @property
    def live_replicas(self) -> int:
        """Replicas that have not crashed yet."""
        return sum(1 for r in self.replicas if not r.crashed)

    # ------------------------------------------------------------------
    # Operation-history recorder
    # ------------------------------------------------------------------
    def _record(self, op: _PendingOp, kind: str, ts: Tuple[int, int], value: Any) -> None:
        """Append one completed-operation interval record (if recording)."""
        if self.config.record_history:
            self.op_history.append(
                EmuOpRecord(
                    op_id=op.op_id,
                    kind=kind,
                    pid=op.pid,
                    register=op.register.name,
                    ts=ts,
                    value=value,
                    inv=op.started_at,
                    resp=self._clock(),
                )
            )

    def recorded_history(self) -> List[EmuOpRecord]:
        """The auditable interval history of this run.

        Completed operations in completion order, plus every write
        still in its write phase when the run ended (reported with
        ``resp = math.inf``): a concurrent read may legitimately have
        returned such a write's timestamp, so the checkers must see the
        write exist.  Reads and query-phase writes that never completed
        returned nothing and are omitted.  Empty unless the config set
        ``record_history``.
        """
        records = list(self.op_history)
        if self.config.record_history:
            for op in self._ops.values():
                if op.kind != "read" and op.phase == "write":
                    records.append(
                        EmuOpRecord(
                            op_id=op.op_id,
                            kind="write",
                            pid=op.pid,
                            register=op.register.name,
                            ts=op.ts,
                            value=op.value,
                            inv=op.started_at,
                            resp=math.inf,
                        )
                    )
        return records

    # ------------------------------------------------------------------
    # Asynchronous operation API (driven by the process runtime)
    # ------------------------------------------------------------------
    def emu_read(self, pid: int, register: Any, callback: Callable[[Any], None]) -> None:
        """Start a quorum read; ``callback(value)`` fires at completion."""
        op = self._new_op(pid, register, "read", callback)
        self._enter_query(op)

    def emu_write(
        self, pid: int, register: Any, value: Any, callback: Callable[[Any], None]
    ) -> None:
        """Start a quorum write; ``callback(None)`` fires at completion.

        Ownership is checked *synchronously* at invocation (exactly like
        the shared backend), so an illegal write raises
        :class:`~repro.memory.register.OwnershipError` in the issuing
        process's step rather than completing remotely.
        """
        owner = getattr(register, "owner", None)
        if isinstance(register, AtomicRegister) and owner is not None and pid != owner:
            raise OwnershipError(
                f"process {pid} attempted to write {register.name} owned by {owner}"
            )
        if isinstance(register, MultiWriterRegister):
            op = self._new_op(pid, register, "mwmr-write", callback)
            op.value = value
            self._enter_query(op)  # learn the current max timestamp first
        else:
            op = self._new_op(pid, register, "write", callback)
            op.value = value
            counter = self._write_counters.get(register.name, 0) + 1
            self._write_counters[register.name] = counter
            self._enter_write(op, (counter, pid))

    def emu_fetch_add(
        self, pid: int, register: MultiWriterRegister, amount: int, callback: Callable[[Any], None]
    ) -> None:
        """Start an emulated fetch&add; ``callback(old_value)`` at completion.

        ABD registers offer only read and write, so fetch&add degrades
        to the racy two-step emulation (query the value, write value +
        amount): concurrent increments may be lost.  The Section 3.5
        variant is documented to tolerate exactly this.
        """
        op = self._new_op(pid, register, "fetch-add", callback)
        op.amount = amount
        self._enter_query(op)

    # ------------------------------------------------------------------
    # Protocol phases
    # ------------------------------------------------------------------
    def _new_op(
        self, pid: int, register: Any, kind: str, callback: Callable[[Any], None]
    ) -> _PendingOp:
        if not self._started:
            # Without replicas the phase would broadcast to nobody and
            # the operation would hang forever; fail loudly instead.
            raise RuntimeError(
                "emulation not started: call start() before issuing operations "
                "(Run.execute does this)"
            )
        self._op_counter += 1
        op = _PendingOp(self._op_counter, pid, register, kind, callback, self._clock())
        self._ops[op.op_id] = op
        return op

    def _enter_query(self, op: _PendingOp) -> None:
        op.phase = "query"
        op.replies = set()
        op.best_ts, op.best_value = self._initial_of(op.register.name)
        self._broadcast_phase(op)
        self._arm_retry(op)

    def _enter_write(self, op: _PendingOp, ts: Tuple[int, int]) -> None:
        op.phase = "write"
        op.ts = ts
        op.replies = set()
        self._broadcast_phase(op)
        if op.retry_handle is None:  # direct writes skip the query phase
            self._arm_retry(op)

    def _broadcast_phase(self, op: _PendingOp) -> None:
        """(Re-)send the current phase's message to unacked replicas."""
        name = op.register.name
        for replica in self.replicas:
            if replica.index in op.replies:
                continue
            if op.phase == "query":
                self.network.send(op.pid, replica.node_id, "abd.read", (op.op_id, name))
            else:
                self.network.send(
                    op.pid, replica.node_id, "abd.write", (op.op_id, name, op.ts, op.value)
                )

    def _arm_retry(self, op: _PendingOp) -> None:
        def retry() -> None:
            if op.done:
                return
            self.retransmissions += 1
            self._broadcast_phase(op)
            op.retry_handle = self._sim.schedule_after_cancellable(
                self.config.retry_interval, retry, kind="abd-retry", pid=op.pid
            )

        op.retry_handle = self._sim.schedule_after_cancellable(
            self.config.retry_interval, retry, kind="abd-retry", pid=op.pid
        )

    def _finish(self, op: _PendingOp, result: Any) -> None:
        op.done = True
        if op.retry_handle is not None:
            op.retry_handle.cancel()
        del self._ops[op.op_id]
        self.total_op_latency += self._clock() - op.started_at
        op.callback(result)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_delivery(self, message: Message) -> None:
        if message.receiver < 0:
            self.replicas[-message.receiver - 1].handle(
                message, self.network, self._initial_of
            )
            return
        op = self._ops.get(message.payload[0])
        if op is None or op.done:
            return  # late ack of a completed phase
        if message.kind == "abd.read-reply":
            self._on_read_reply(op, message)
        elif message.kind == "abd.write-ack":
            self._on_write_ack(op, message)

    def _on_read_reply(self, op: _PendingOp, message: Message) -> None:
        if op.phase != "query":
            return
        _, name, ts, value = message.payload
        replica_index = -message.sender - 1
        if replica_index in op.replies:
            return
        op.replies.add(replica_index)
        if ts > op.best_ts:
            op.best_ts, op.best_value = ts, value
        if len(op.replies) < self.config.majority:
            return
        if op.kind == "read":
            if self.config.consistency == "atomic":
                # ABD write-back: propagate the (timestamp, value) this
                # read is about to return to a majority first, so no
                # later read can see an older value (atomicity).
                self.write_backs += 1
                op.value = op.best_value
                self._enter_write(op, op.best_ts)
            else:
                self._complete_read(op)
        elif op.kind == "mwmr-write":
            self._enter_write(op, (op.best_ts[0] + 1, op.pid))
        else:  # fetch-add: write value + amount, return the old value
            op.value = op.best_value + op.amount
            self._enter_write(op, (op.best_ts[0] + 1, op.pid))

    def _on_write_ack(self, op: _PendingOp, message: Message) -> None:
        _, name, ts, value = message.payload
        if op.phase != "write" or ts != op.ts:
            return
        replica_index = -message.sender - 1
        if replica_index not in op.replies and value != op.value:
            # The replica echoed back a value other than the one this
            # write phase is propagating: the payload was corrupted on
            # the wire (in either direction).  Detection only -- the ack
            # still counts toward the quorum, mirroring how the paper's
            # protocol has no integrity defence; the counter and the
            # history audit make the corruption visible.
            self.integrity_violations += 1
        op.replies.add(replica_index)
        if len(op.replies) < self.config.majority:
            return
        if op.kind == "read":  # an atomic read's write-back completed
            self._complete_read(op)
        else:
            self._complete_write(op)

    # ------------------------------------------------------------------
    # Completions (the linearization points of the emulated history)
    # ------------------------------------------------------------------
    def _complete_read(self, op: _PendingOp) -> None:
        register = op.register
        self._note_read(register.name, op.pid)
        if isinstance(register, AtomicRegister):
            register._reads += 1  # keep the per-register counter exact
        self.reads_completed += 1
        self.read_op_latency += self._clock() - op.started_at
        self._record(op, "read", op.best_ts, op.best_value)
        self._finish(op, op.best_value)

    def _complete_write(self, op: _PendingOp) -> None:
        register = op.register
        self.writes_completed += 1
        if op.kind == "fetch-add":
            # One counted read + one counted write, like the shared
            # fetch&add; the local mirror takes the written value.
            self._note_read(register.name, op.pid)
            register.poke(op.value)
            self._note_write(register.name, op.pid, op.value, critical=register.critical)
            self._record(op, "read", op.best_ts, op.best_value)
            self._record(op, "write", op.ts, op.value)
            self._finish(op, op.value - op.amount)
        else:
            register.write(op.pid, op.value)  # mirror + accounting + owner check
            self._record(op, "write", op.ts, op.value)
            self._finish(op, None)


__all__ = [
    "CONSISTENCY_LEVELS",
    "EmuOpRecord",
    "EmulatedMemory",
    "EmulationConfig",
    "LINK_MODELS",
    "ReplicaNode",
]
