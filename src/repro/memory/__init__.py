"""Shared-memory substrate: atomic registers, arrays, statistics, disks.

The paper's processes communicate *only* by reading and writing atomic
one-writer/multi-reader (1WnR) registers.  This package provides:

* :class:`~repro.memory.register.AtomicRegister` -- an owner-checked
  1WnR register whose operations linearize at simulator-time points;
* :class:`~repro.memory.arrays.RegisterArray` /
  :class:`~repro.memory.arrays.RegisterMatrix` -- the shapes the
  algorithms use (``PROGRESS[n]``, ``STOP[n]``, ``SUSPICIONS[n][n]``,
  ``LAST[n][n]``), with per-entry ownership;
* :class:`~repro.memory.memory.SharedMemory` -- the namespace plus the
  access statistics that the theorems are *checked* against (who wrote
  when, which registers are still growing, global state snapshots);
* :class:`~repro.memory.mwmr.MultiWriterRegister` -- for the paper's
  Section 3.5 nWnR variant;
* :mod:`~repro.memory.backend` -- the pluggable **memory backend**
  layer: the :class:`~repro.memory.backend.MemoryBackend` protocol every
  substrate implements, the :data:`~repro.memory.backend.BACKENDS`
  registry and the :func:`~repro.memory.backend.create_memory` factory
  ``Run`` selects backends through;
* :mod:`~repro.memory.emulated` -- the ``"emulated"`` backend: an
  ABD-style majority-quorum emulation of the registers over
  :mod:`repro.netsim` message passing (replica nodes, timestamped
  values, reader/writer phases, retransmission, replica crashes);
* :mod:`~repro.memory.membership` -- dynamic replica membership for the
  emulation: versioned :class:`~repro.memory.membership.ReplicaConfig`
  member sets and validated join/leave
  :class:`~repro.memory.membership.MembershipPlan` timelines driving
  RAMBO-style two-config reconfiguration;
* :mod:`~repro.memory.disk` -- a network-attached-disk model (the SAN
  deployment the paper motivates) with non-instantaneous operations;
* :mod:`~repro.memory.linearizability` -- a checker for single-writer
  interval histories produced by the disk model.
"""

from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.backend import BACKENDS, MemoryBackend, create_memory
from repro.memory.emulated import EmulatedMemory, EmulationConfig
from repro.memory.membership import MembershipEvent, MembershipPlan, ReplicaConfig
from repro.memory.memory import AccessKind, SharedMemory
from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister, OwnershipError

__all__ = [
    "AccessKind",
    "AtomicRegister",
    "BACKENDS",
    "EmulatedMemory",
    "EmulationConfig",
    "MembershipEvent",
    "MembershipPlan",
    "MemoryBackend",
    "MultiWriterRegister",
    "ReplicaConfig",
    "OwnershipError",
    "RegisterArray",
    "RegisterMatrix",
    "SharedMemory",
    "create_memory",
]
