"""Shared-memory substrate: atomic registers, arrays, statistics, disks.

The paper's processes communicate *only* by reading and writing atomic
one-writer/multi-reader (1WnR) registers.  This package provides:

* :class:`~repro.memory.register.AtomicRegister` -- an owner-checked
  1WnR register whose operations linearize at simulator-time points;
* :class:`~repro.memory.arrays.RegisterArray` /
  :class:`~repro.memory.arrays.RegisterMatrix` -- the shapes the
  algorithms use (``PROGRESS[n]``, ``STOP[n]``, ``SUSPICIONS[n][n]``,
  ``LAST[n][n]``), with per-entry ownership;
* :class:`~repro.memory.memory.SharedMemory` -- the namespace plus the
  access statistics that the theorems are *checked* against (who wrote
  when, which registers are still growing, global state snapshots);
* :class:`~repro.memory.mwmr.MultiWriterRegister` -- for the paper's
  Section 3.5 nWnR variant;
* :mod:`~repro.memory.disk` -- a network-attached-disk model (the SAN
  deployment the paper motivates) with non-instantaneous operations;
* :mod:`~repro.memory.linearizability` -- a checker for single-writer
  interval histories produced by the disk model.
"""

from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.memory import AccessKind, SharedMemory
from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister, OwnershipError

__all__ = [
    "AccessKind",
    "AtomicRegister",
    "MultiWriterRegister",
    "OwnershipError",
    "RegisterArray",
    "RegisterMatrix",
    "SharedMemory",
]
