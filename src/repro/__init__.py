"""repro -- an executable reproduction of
"Electing an Eventual Leader in an Asynchronous Shared Memory System"
(A. Fernandez, E. Jimenez, M. Raynal; DSN 2007 / IRISA PI 1821).

The package builds the paper's system model ``AS[n, AWB]`` as a
deterministic discrete-event simulation and implements, measures and
stress-tests its two Omega (eventual leader) algorithms:

>>> from repro import Run, WriteEfficientOmega
>>> result = Run(WriteEfficientOmega, n=4, seed=1, horizon=500.0).execute()
>>> report = result.stabilization()
>>> report.stabilized and report.leader_correct
True

See README.md for the tour, DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core import (
    BoundedOmega,
    EventuallySynchronousOmega,
    MultiWriterOmega,
    Run,
    RunResult,
    StepCounterOmega,
    WriteEfficientOmega,
)
from repro.sim import CrashPlan, RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "BoundedOmega",
    "CrashPlan",
    "EventuallySynchronousOmega",
    "MultiWriterOmega",
    "RngRegistry",
    "Run",
    "RunResult",
    "Simulator",
    "StepCounterOmega",
    "WriteEfficientOmega",
    "__version__",
]
