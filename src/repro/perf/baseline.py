"""Perf baselines: the ``BENCH_perf.json`` schema and regression gate.

The baseline file is a stable-schema JSON document committed at the
repo root::

    {
      "format": 1,
      "kind": "repro-perf",
      "created": "2026-07-27T12:00:00Z",
      "meta": {"python": ..., "implementation": ..., "platform": ...,
               "cpu_count": ..., "kernel_variant": "python|compiled",
               "kernel_variant_reason": ...},
      "profiles": {
        "full":  {"benchmarks": {"<name>": {"value": ..., "unit": ...,
                                            "higher_is_better": ...,
                                            "meta": {...}}}},
        "quick": {"benchmarks": {...}}
      },
      "reference": {"description": ..., "benchmarks": {"<name>": value}},
      "speedup_vs_reference": {"<name>": ratio}
    }

``profiles.*.benchmarks`` is the compared surface: a comparison matches
entries by ``(profile, name)``, computes the relative regression from
``value`` and ``higher_is_better``, and fails when any entry regressed
by more than the allowed fraction (or disappeared).  ``meta`` is
documentation, never compared.  ``reference`` records the pre-overhaul
hot-path numbers the tentpole PR was measured against;
``speedup_vs_reference`` is derived from it at emit time.

Values are wall-clock measurements: refresh the committed baseline when
the benchmark machine changes (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.paths import repo_root
from repro.perf.bench import BenchResult

#: Bumped whenever the payload layout changes incompatibly.
SCHEMA_FORMAT = 1

#: Canonical baseline location (repo root).
BASELINE_FILENAME = "BENCH_perf.json"

#: Pre-overhaul hot-path numbers, measured on the development container
#: at commit 6a32202 (dataclass event pairs, isinstance dispatch,
#: dict-backed trace records) with the ``full`` profile workloads.
#: They anchor the ``speedup_vs_reference`` section of emitted
#: baselines; refresh them only if the reference measurement is redone.
PRE_OVERHAUL_REFERENCE: Dict[str, float] = {
    "kernel_events_per_sec": 226_000.0,
    "scenario_alg1_n16_traced_wall_s": 0.471,
    "scenario_alg1_n16_fast_wall_s": 0.493,
}

PRE_OVERHAUL_DESCRIPTION = (
    "pre-overhaul simulation core at commit 6a32202 (per-event dataclass "
    "pairs, isinstance operation dispatch, dict-backed trace records), "
    "full-profile workloads, development container"
)


def environment_meta() -> Dict[str, Any]:
    """The measurement environment recorded in the payload's ``meta``
    block: interpreter, CPU budget and which kernel variant ran.

    Documentation only (never compared), but essential for judging
    whether two baselines are comparable at all -- a ``compiled``-kernel
    number against a pure-Python one is apples to oranges.
    """
    from repro.sim.variant import kernel_variant

    variant, reason = kernel_variant()
    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "kernel_variant": variant,
        "kernel_variant_reason": reason,
    }


def default_baseline_path() -> Path:
    """``BENCH_perf.json`` at the repo root (falls back to the CWD when
    the package is installed outside a checkout)."""
    root = repo_root()
    if root is not None:
        return root / BASELINE_FILENAME
    return Path(BASELINE_FILENAME)


# ----------------------------------------------------------------------
# Payload construction and IO
# ----------------------------------------------------------------------
def make_payload(
    results_by_profile: Mapping[str, Mapping[str, BenchResult]],
    reference: Optional[Mapping[str, float]] = None,
    existing: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the stable-schema payload from measured profiles.

    ``existing`` is a previously written payload to merge with: its
    profiles that this run did *not* execute are carried over unchanged,
    so a ``--quick`` refresh never silently drops the committed ``full``
    profile (and vice versa).
    """
    reference = PRE_OVERHAUL_REFERENCE if reference is None else dict(reference)
    profiles: Dict[str, Any] = {}
    if existing is not None:
        for profile, prof in existing.get("profiles", {}).items():
            if profile not in results_by_profile:
                profiles[profile] = prof
    for profile, results in results_by_profile.items():
        profiles[profile] = {
            "benchmarks": {name: result.to_jsonable() for name, result in results.items()}
        }
    speedups: Dict[str, float] = {}
    # Reference numbers were measured with the full-profile workloads, so
    # a full run's values win over a quick run's for the same name.
    ordered = sorted(profiles, key=lambda p: (p != "full", p))
    for profile in ordered:
        for name, bench in profiles[profile]["benchmarks"].items():
            ref = reference.get(name)
            if not ref or name in speedups:
                continue
            # A speedup is always "new is this many times faster".
            if bench["higher_is_better"]:
                speedups[name] = bench["value"] / ref
            else:
                speedups[name] = ref / bench["value"]
    return {
        "format": SCHEMA_FORMAT,
        "kind": "repro-perf",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": environment_meta(),
        "profiles": profiles,
        "reference": {
            "description": PRE_OVERHAUL_DESCRIPTION,
            "benchmarks": dict(reference),
        },
        "speedup_vs_reference": speedups,
    }


def merge_best(
    a: Mapping[str, BenchResult], b: Mapping[str, BenchResult]
) -> Dict[str, BenchResult]:
    """Per-benchmark best of two measurement passes of one profile.

    "Best" follows each benchmark's direction (max for throughput, min
    for wall time) -- the retry path of the regression gate uses this so
    a single noisy pass cannot fail the comparison on its own.
    """
    merged: Dict[str, BenchResult] = dict(a)
    for name, result in b.items():
        prior = merged.get(name)
        if prior is None:
            merged[name] = result
            continue
        if result.higher_is_better:
            better = result.value > prior.value
        else:
            better = result.value < prior.value
        if better:
            merged[name] = result
    return merged


def write_payload(path: Path, payload: Mapping[str, Any]) -> None:
    """Write the payload with a stable key order and trailing newline."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_payload(path: Path) -> Dict[str, Any]:
    """Load and format-check a baseline file."""
    payload = json.loads(Path(path).read_text())
    fmt = payload.get("format")
    if fmt != SCHEMA_FORMAT:
        raise ValueError(
            f"{path}: unsupported perf baseline format {fmt!r} "
            f"(this build reads format {SCHEMA_FORMAT})"
        )
    if payload.get("kind") != "repro-perf":
        raise ValueError(f"{path}: not a repro-perf baseline")
    return payload


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One benchmark that regressed past the allowed fraction."""

    profile: str
    name: str
    baseline_value: Optional[float]
    current_value: Optional[float]
    #: Relative regression (0.18 = 18% worse); ``None`` for a missing
    #: benchmark.
    regress_frac: Optional[float]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.profile}] {self.name}: {self.detail}"


def parse_max_regress(text: str) -> float:
    """Parse ``"15%"`` or ``"0.15"`` into the fraction ``0.15``."""
    raw = text.strip()
    percent = raw.endswith("%")
    if percent:
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"cannot parse regression threshold {text!r}") from None
    if percent:
        value /= 100.0
    # NaN fails every '>' comparison in the gate, which would silently
    # disable it -- reject alongside negatives (not value >= 0 catches both).
    if not value >= 0:
        raise ValueError(f"regression threshold must be non-negative, got {text!r}")
    return value


def compare_payloads(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    max_regress: float,
) -> List[Regression]:
    """Gate ``current`` against ``baseline``.

    Every benchmark of every baseline profile that the current payload
    *also measured* must be present and within ``max_regress`` of the
    baseline value.  Profiles the current run did not execute are
    skipped (a ``--quick`` run gates only the quick profile); benchmarks
    that vanished from an executed profile are failures (schema drift
    must be an explicit baseline refresh, not a silent skip).
    """
    failures: List[Regression] = []
    current_profiles = current.get("profiles", {})
    for profile, base_prof in baseline.get("profiles", {}).items():
        cur_prof = current_profiles.get(profile)
        if cur_prof is None:
            continue
        cur_benches = cur_prof.get("benchmarks", {})
        for name, base_bench in base_prof.get("benchmarks", {}).items():
            base_value = float(base_bench["value"])
            cur_bench = cur_benches.get(name)
            if cur_bench is None:
                failures.append(
                    Regression(
                        profile=profile,
                        name=name,
                        baseline_value=base_value,
                        current_value=None,
                        regress_frac=None,
                        detail="benchmark missing from current run",
                    )
                )
                continue
            cur_value = float(cur_bench["value"])
            higher = bool(base_bench.get("higher_is_better", True))
            if base_value == 0:
                continue  # degenerate baseline; nothing sane to gate on
            if higher:
                regress = (base_value - cur_value) / base_value
            else:
                regress = (cur_value - base_value) / base_value
            if regress > max_regress:
                unit = base_bench.get("unit", "")
                failures.append(
                    Regression(
                        profile=profile,
                        name=name,
                        baseline_value=base_value,
                        current_value=cur_value,
                        regress_frac=regress,
                        detail=(
                            f"regressed {regress * 100.0:.1f}% "
                            f"(baseline {base_value:.6g} {unit}, "
                            f"current {cur_value:.6g} {unit}, "
                            f"allowed {max_regress * 100.0:.0f}%)"
                        ),
                    )
                )
    return failures


__all__ = [
    "BASELINE_FILENAME",
    "PRE_OVERHAUL_DESCRIPTION",
    "PRE_OVERHAUL_REFERENCE",
    "Regression",
    "SCHEMA_FORMAT",
    "compare_payloads",
    "default_baseline_path",
    "environment_meta",
    "load_payload",
    "make_payload",
    "merge_best",
    "parse_max_regress",
    "write_payload",
]
