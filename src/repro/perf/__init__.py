"""The ``repro perf`` benchmark subsystem.

Makes the simulation core's speed a first-class, tracked artifact:

``bench``
    The microbenchmarks -- kernel event throughput, per-scenario run
    time, and engine sweep throughput -- each returning a
    :class:`~repro.perf.bench.BenchResult`.
``baseline``
    The stable-schema JSON baseline (``BENCH_perf.json`` at the repo
    root), the regression comparator behind
    ``repro perf --compare BASELINE.json --max-regress 15%``, and the
    recorded pre-overhaul reference numbers.

See EXPERIMENTS.md ("Performance tracking") for the schema and the
baseline-refresh workflow.
"""

from repro.perf.baseline import (
    BASELINE_FILENAME,
    PRE_OVERHAUL_REFERENCE,
    SCHEMA_FORMAT,
    Regression,
    compare_payloads,
    default_baseline_path,
    load_payload,
    make_payload,
    merge_best,
    parse_max_regress,
    write_payload,
)
from repro.perf.bench import (
    PROFILES,
    BenchResult,
    bench_kernel_throughput,
    bench_scenario,
    bench_sweep_throughput,
    collect_profile,
)

__all__ = [
    "BASELINE_FILENAME",
    "BenchResult",
    "PRE_OVERHAUL_REFERENCE",
    "PROFILES",
    "Regression",
    "SCHEMA_FORMAT",
    "bench_kernel_throughput",
    "bench_scenario",
    "bench_sweep_throughput",
    "collect_profile",
    "compare_payloads",
    "default_baseline_path",
    "load_payload",
    "make_payload",
    "merge_best",
    "parse_max_regress",
    "write_payload",
]
