"""The perf microbenchmarks.

Three families, mirroring the layers of the simulation core:

* **kernel throughput** -- events/second through the tuple-heap event
  queue and the fused run loop: staggered (unique timestamps), aligned
  (equal-timestamp batches through the collision buckets), cancellable
  (handle-allocating) and lane (columnar integer-token) variants;
* **per-scenario run time** -- wall seconds (and derived events/second)
  of a nominal ``alg1`` election at a fixed seed, in both the traced and
  the low-overhead run mode, plus the same election with the registers
  realized by the ABD quorum emulation (the emulated-backend axis: its
  event count multiplies with replica messages, so it tracks the
  netsim/emulation hot path rather than the register fast path);
* **sweep throughput** -- cells/second through the parallel experiment
  engine on a small uncached grid, single-pool and in-process sharded.

Each benchmark repeats its measured section and keeps the *best* repeat
(minimum wall time), which is the standard way to damp scheduler and
allocator jitter in short benchmarks.  Values are wall-clock dependent:
compare them only against baselines recorded on comparable hardware
(see EXPERIMENTS.md, "Performance tracking").

Two profiles exist: ``full`` (the committed-baseline workloads) and
``quick`` (scaled-down workloads for CI smoke jobs and tests).  A
profile's benchmark *names* are identical across machines; comparisons
match on ``(profile, name)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class BenchResult:
    """One measured benchmark value."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    #: Workload knobs and secondary measurements (never compared).
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        """The JSON form stored in BENCH_perf.json (name is the key)."""
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "meta": dict(self.meta),
        }


# ----------------------------------------------------------------------
# Kernel throughput
# ----------------------------------------------------------------------
def bench_kernel_throughput(
    events: int = 200_000,
    chains: int = 4,
    repeats: int = 3,
    cancellable: bool = False,
    aligned: bool = False,
    name: str = "kernel_events_per_sec",
) -> BenchResult:
    """Events/second through the kernel's schedule-and-fire cycle.

    ``chains`` self-rescheduling callbacks ping through the heap until
    ``events`` events fired; with ``cancellable`` every reschedule takes
    the handle-allocating path (the timer service's pattern).

    With ``aligned`` all chains start at the *same* instant and stay in
    lock-step, so every virtual tick is one equal-timestamp batch of
    ``chains`` events -- the workload the batched run loop drains from
    its collision buckets without re-heaping (processes that share timer
    periods, synchronized retransmissions).  Staggered (the default)
    keeps every timestamp unique, exercising the heap/singleton path.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        sim = Simulator(trace_events=False)
        if cancellable:
            def make(ch: int) -> Callable[[], None]:
                def cb() -> None:
                    sim.schedule_after_cancellable(1.0, cb, kind="bench", pid=ch)
                return cb
        else:
            def make(ch: int) -> Callable[[], None]:
                def cb() -> None:
                    sim.schedule_after(1.0, cb, kind="bench", pid=ch)
                return cb
        for ch in range(chains):
            start = 1.0 if aligned else float(ch) / chains
            sim.schedule_at(start, make(ch), kind="bench", pid=ch)
        started = time.perf_counter()
        sim.run(max_events=events)
        best = min(best, time.perf_counter() - started)
    return BenchResult(
        name=name,
        value=events / best,
        unit="events/s",
        higher_is_better=True,
        meta={
            "events": events,
            "chains": chains,
            "repeats": repeats,
            "cancellable": cancellable,
            "aligned": aligned,
            "best_wall_s": best,
        },
    )


def bench_lane_throughput(
    events: int = 100_000,
    chains: int = 4,
    repeats: int = 3,
    name: str = "kernel_lane_events_per_sec",
) -> BenchResult:
    """Events/second through the columnar :class:`EventLane` path.

    The cancellable counterpart of :func:`bench_kernel_throughput`:
    every reschedule acquires a lane slot and returns an integer token
    instead of allocating an :class:`EventHandle` -- the pattern the
    timer service and netsim deliveries run on.
    """
    from repro.sim.events import EventLane

    best = float("inf")
    for _ in range(max(1, repeats)):
        sim = Simulator(trace_events=False)
        lane = EventLane("bench-lane", None)  # consume=None: payload is the callback

        def make(ch: int) -> Callable[[], None]:
            def cb() -> None:
                sim.schedule_lane_after(lane, 1.0, cb, pid=ch)
            return cb

        for ch in range(chains):
            sim.schedule_at(float(ch) / chains, make(ch), kind="bench", pid=ch)
        started = time.perf_counter()
        sim.run(max_events=events)
        best = min(best, time.perf_counter() - started)
    return BenchResult(
        name=name,
        value=events / best,
        unit="events/s",
        higher_is_better=True,
        meta={
            "events": events,
            "chains": chains,
            "repeats": repeats,
            "best_wall_s": best,
        },
    )


# ----------------------------------------------------------------------
# Per-scenario run time
# ----------------------------------------------------------------------
def bench_scenario(
    scenario: str = "nominal",
    algorithm: str = "alg1",
    n: int = 16,
    horizon: float = 2000.0,
    seed: int = 0,
    repeats: int = 2,
    fast: bool = False,
    name: str = "scenario_alg1_n16_wall_s",
) -> Tuple[BenchResult, BenchResult]:
    """Wall seconds of one full scenario run, plus derived events/sec.

    Returns ``(wall_result, throughput_result)``; the throughput entry
    is ``<name minus _wall_s>_events_per_sec``.
    """
    from repro.workloads.registry import ALGORITHMS, SCENARIO_FACTORIES

    scen = SCENARIO_FACTORIES[scenario](n=n, horizon=horizon)
    algo_cls = ALGORITHMS[algorithm]
    overrides: Dict[str, Any] = (
        {"log_reads": False, "trace_events": False} if fast else {}
    )
    scen.run(algo_cls, seed=seed, **overrides)  # warm-up (imports, JITs nothing, caches code)
    best = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = scen.run(algo_cls, seed=seed, **overrides)
        best = min(best, time.perf_counter() - started)
        events = result.sim.events_fired
    meta = {
        "scenario": scenario,
        "algorithm": algorithm,
        "n": n,
        "horizon": horizon,
        "seed": seed,
        "repeats": repeats,
        "fast": fast,
        "events_fired": events,
    }
    wall = BenchResult(
        name=name, value=best, unit="s", higher_is_better=False, meta=meta
    )
    stem = name[: -len("_wall_s")] if name.endswith("_wall_s") else name
    throughput = BenchResult(
        name=f"{stem}_events_per_sec",
        value=events / best,
        unit="events/s",
        higher_is_better=True,
        meta=meta,
    )
    return wall, throughput


# ----------------------------------------------------------------------
# Sweep throughput
# ----------------------------------------------------------------------
def bench_sweep_throughput(
    n: int = 6,
    horizon: float = 800.0,
    seeds: Tuple[int, ...] = (0, 1, 2, 3),
    algorithms: Tuple[str, ...] = ("alg1", "alg2"),
    jobs: int = 2,
    name: str = "sweep_cells_per_sec",
) -> BenchResult:
    """Cells/second through the parallel engine (cache disabled)."""
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec
    from repro.workloads.registry import ALGORITHMS, SCENARIO_FACTORIES

    algos = {label: ALGORITHMS[label] for label in algorithms}
    scen = SCENARIO_FACTORIES["nominal"](n=n, horizon=horizon)
    spec = ExperimentSpec.from_objects("perf-sweep", algos, [scen], seeds)
    report = run_experiment(spec, jobs=jobs, cache=False, strict=True)
    cells = spec.size()
    return BenchResult(
        name=name,
        value=cells / report.wall_time_s,
        unit="cells/s",
        higher_is_better=True,
        meta={
            "cells": cells,
            "jobs": jobs,
            "n": n,
            "horizon": horizon,
            "seeds": list(seeds),
            "algorithms": list(algorithms),
            "wall_s": report.wall_time_s,
        },
    )


def bench_sweep_sharded(
    n: int = 6,
    horizon: float = 800.0,
    seeds: Tuple[int, ...] = (0, 1, 2, 3),
    algorithms: Tuple[str, ...] = ("alg1", "alg2"),
    jobs: int = 2,
    shards: int = 2,
    name: str = "sweep_sharded_cells_per_sec",
) -> BenchResult:
    """Cells/second through the in-process sharded sweep path.

    Same grid as :func:`bench_sweep_throughput` but partitioned into
    ``shards`` sequential process pools (``run_experiment(shards=N)``),
    measuring the per-shard pool spin-up/teardown overhead that a
    ``repro sweep --shard K/N`` deployment pays on each machine.
    """
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec
    from repro.workloads.registry import ALGORITHMS, SCENARIO_FACTORIES

    algos = {label: ALGORITHMS[label] for label in algorithms}
    scen = SCENARIO_FACTORIES["nominal"](n=n, horizon=horizon)
    spec = ExperimentSpec.from_objects("perf-sweep-sharded", algos, [scen], seeds)
    report = run_experiment(spec, jobs=jobs, cache=False, strict=True, shards=shards)
    cells = spec.size()
    return BenchResult(
        name=name,
        value=cells / report.wall_time_s,
        unit="cells/s",
        higher_is_better=True,
        meta={
            "cells": cells,
            "jobs": jobs,
            "shards": shards,
            "n": n,
            "horizon": horizon,
            "seeds": list(seeds),
            "algorithms": list(algorithms),
            "wall_s": report.wall_time_s,
        },
    )


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def _collect_full() -> List[BenchResult]:
    out: List[BenchResult] = [
        bench_kernel_throughput(events=200_000, chains=4, repeats=5),
        bench_kernel_throughput(
            events=200_000,
            chains=32,
            repeats=5,
            aligned=True,
            name="kernel_batched_events_per_sec",
        ),
        bench_kernel_throughput(
            events=100_000,
            chains=4,
            repeats=5,
            cancellable=True,
            name="kernel_cancellable_events_per_sec",
        ),
        bench_lane_throughput(events=100_000, chains=4, repeats=5),
    ]
    out.extend(
        bench_scenario(
            n=16, horizon=2000.0, fast=False, name="scenario_alg1_n16_traced_wall_s"
        )
    )
    out.extend(
        bench_scenario(
            n=16, horizon=2000.0, fast=True, name="scenario_alg1_n16_fast_wall_s"
        )
    )
    out.extend(
        bench_scenario(
            scenario="nominal-emulated",
            n=8,
            horizon=2000.0,
            fast=True,
            name="scenario_alg1_emulated_n8_wall_s",
        )
    )
    out.append(bench_sweep_throughput())
    out.append(bench_sweep_sharded())
    return out


def _collect_quick() -> List[BenchResult]:
    out: List[BenchResult] = [
        bench_kernel_throughput(events=50_000, chains=4, repeats=5),
        bench_kernel_throughput(
            events=50_000,
            chains=32,
            repeats=5,
            aligned=True,
            name="kernel_batched_events_per_sec",
        ),
        bench_kernel_throughput(
            events=25_000,
            chains=4,
            repeats=5,
            cancellable=True,
            name="kernel_cancellable_events_per_sec",
        ),
        bench_lane_throughput(events=25_000, chains=4, repeats=5),
    ]
    out.extend(
        bench_scenario(
            n=8,
            horizon=800.0,
            repeats=2,
            fast=False,
            name="scenario_alg1_n8_traced_wall_s",
        )
    )
    out.extend(
        bench_scenario(
            n=8,
            horizon=800.0,
            repeats=2,
            fast=True,
            name="scenario_alg1_n8_fast_wall_s",
        )
    )
    out.extend(
        bench_scenario(
            scenario="nominal-emulated",
            n=4,
            horizon=800.0,
            repeats=2,
            fast=True,
            name="scenario_alg1_emulated_n4_wall_s",
        )
    )
    out.append(
        bench_sweep_throughput(n=4, horizon=400.0, seeds=(0, 1), jobs=2)
    )
    out.append(
        bench_sweep_sharded(n=4, horizon=400.0, seeds=(0, 1), jobs=2, shards=2)
    )
    return out


#: profile name -> collector.
PROFILES: Dict[str, Callable[[], List[BenchResult]]] = {
    "full": _collect_full,
    "quick": _collect_quick,
}


def collect_profile(profile: str) -> Dict[str, BenchResult]:
    """Run one profile's benchmarks; returns ``{name: result}`` in run order."""
    try:
        collector = PROFILES[profile]
    except KeyError:
        raise ValueError(f"unknown perf profile {profile!r}; have {sorted(PROFILES)}")
    results = collector()
    return {r.name: r for r in results}


__all__ = [
    "BenchResult",
    "PROFILES",
    "bench_kernel_throughput",
    "bench_lane_throughput",
    "bench_scenario",
    "bench_sweep_sharded",
    "bench_sweep_throughput",
    "collect_profile",
]
