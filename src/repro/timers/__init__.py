"""Timer substrate: assumption AWB2 made executable.

The paper's second assumption constrains only the *realized duration*
``T_R(tau, x)`` of each non-leader timer: there must exist a function
``f_R`` with

* **(f1)** -- beyond some ``(tau_f, x_f)``, ``f_R`` is non-decreasing in
  both arguments;
* **(f2)** -- ``lim_{x -> inf} f_R(tau_f, x) = +inf``;
* **(f3)** -- beyond ``(tau_f, x_f)``, ``T_R(tau, x) >= f_R(tau, x)``.

Crucially ``T_R`` itself may be wild: before ``tau_f`` it can fire
arbitrarily early (false suspicions!), and even afterwards it need not
be monotone -- it only has to *dominate* ``f_R`` (paper Figure 1).

``functions`` is the ``f`` library (plus deliberate violators for
negative tests), ``awb`` the ``T_R`` behaviour models, and ``service``
the kernel-attached timer service the algorithms use.
"""

from repro.timers.awb import (
    AccurateTimer,
    AsymptoticallyWellBehavedTimer,
    CappedTimer,
    EventuallyMonotoneTimer,
    TimerBehavior,
)
from repro.timers.functions import (
    AffineF,
    LinearF,
    LogF,
    SqrtF,
    check_f1,
    check_f2_divergence,
    check_f3_domination,
)
from repro.timers.service import TimerHandle, TimerService

__all__ = [
    "AccurateTimer",
    "AffineF",
    "AsymptoticallyWellBehavedTimer",
    "CappedTimer",
    "EventuallyMonotoneTimer",
    "LinearF",
    "LogF",
    "SqrtF",
    "TimerBehavior",
    "TimerHandle",
    "TimerService",
    "check_f1",
    "check_f2_divergence",
    "check_f3_domination",
]
