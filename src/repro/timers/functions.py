"""The ``f`` function library for assumption AWB2.

An ``f`` function maps ``(tau, x)`` -- the time a timer is set and the
timeout value it is set to -- to a duration lower bound.  Conditions
(f1) and (f2) from the paper (see package docstring) are properties of
``f`` alone; (f3) relates ``f`` to a realized-duration history and is
checked by :func:`check_f3_domination`.

Besides conforming functions the module ships deliberate violators
(:class:`BoundedF`, non-divergent; :class:`DecreasingF`, non-monotone)
used by negative tests: runs whose timers only dominate a *bounded*
``f`` are allowed to suspect the leader forever, and the test suite
demonstrates exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, Tuple


class FFunction(Protocol):
    """Protocol for AWB2 lower-bound functions."""

    #: The (tau_f, x_f) pair beyond which (f1) and (f3) are promised.
    tau_f: float
    x_f: float

    def __call__(self, tau: float, x: float) -> float:
        """Duration lower bound for a timer set at ``tau`` to value ``x``."""
        ...


@dataclass(frozen=True)
class LinearF:
    """``f(tau, x) = alpha * x`` -- the canonical divergent choice."""

    alpha: float = 1.0
    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        return self.alpha * x


@dataclass(frozen=True)
class AffineF:
    """``f(tau, x) = alpha * x + c`` with ``alpha > 0``."""

    alpha: float = 1.0
    c: float = 0.0
    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        return self.alpha * x + self.c


@dataclass(frozen=True)
class SqrtF:
    """``f(tau, x) = alpha * sqrt(x)`` -- diverges, just slowly.

    Exercises the "asymptotically" in *asymptotically well-behaved*:
    timeouts must grow quadratically farther before the duration
    outlasts a given bound, so convergence is visibly slower -- an
    ablation in the Figure 1 bench.
    """

    alpha: float = 1.0
    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        return self.alpha * math.sqrt(max(0.0, x))


@dataclass(frozen=True)
class LogF:
    """``f(tau, x) = alpha * log(1 + x)`` -- divergent but glacial."""

    alpha: float = 1.0
    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        return self.alpha * math.log1p(max(0.0, x))


@dataclass(frozen=True)
class BoundedF:
    """VIOLATOR of (f2): ``f(tau, x) = cap * x / (1 + x)`` never exceeds
    ``cap``.  A timer dominating only this ``f`` may fire early forever."""

    cap: float = 5.0
    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        return self.cap * x / (1.0 + max(0.0, x))


@dataclass(frozen=True)
class DecreasingF:
    """VIOLATOR of (f1): decreasing in ``x`` beyond every point."""

    tau_f: float = 0.0
    x_f: float = 0.0

    def __call__(self, tau: float, x: float) -> float:
        return 10.0 / (1.0 + max(0.0, x))


# ----------------------------------------------------------------------
# Property checks (used by tests and by the Figure 1 bench)
# ----------------------------------------------------------------------
def check_f1(
    f: FFunction,
    taus: Sequence[float],
    xs: Sequence[float],
) -> bool:
    """Empirically check (f1): monotone beyond ``(tau_f, x_f)``.

    Evaluates ``f`` on the grid of sample points at or beyond
    ``(tau_f, x_f)`` and verifies it never decreases along either axis.
    """
    taus_ok = sorted(t for t in taus if t >= f.tau_f)
    xs_ok = sorted(x for x in xs if x >= f.x_f)
    for i, tau in enumerate(taus_ok):
        for j, x in enumerate(xs_ok):
            here = f(tau, x)
            if i > 0 and f(taus_ok[i - 1], x) > here + 1e-12:
                return False
            if j > 0 and f(tau, xs_ok[j - 1]) > here + 1e-12:
                return False
    return True


def check_f2_divergence(
    f: FFunction,
    threshold: float,
    x_limit: float = 1e9,
) -> Tuple[bool, float]:
    """Empirically check (f2): does ``f(tau_f, x)`` exceed ``threshold``?

    Returns ``(True, x*)`` with the first sampled ``x*`` achieving the
    threshold, or ``(False, x_limit)``.  Doubling search from
    ``max(1, x_f)``.
    """
    x = max(1.0, f.x_f)
    while x <= x_limit:
        if f(f.tau_f, x) > threshold:
            return True, x
        x *= 2.0
    return False, x_limit


def check_f3_domination(
    f: FFunction,
    realized: Iterable[Tuple[float, float, float]],
    tau_f: float | None = None,
    x_f: float | None = None,
) -> bool:
    """Check (f3) against a realized-duration history.

    ``realized`` is an iterable of ``(tau, x, duration)`` triples --
    exactly what :class:`~repro.timers.service.TimerService` records.
    Only samples beyond the cut-offs are constrained.
    """
    tcut = f.tau_f if tau_f is None else tau_f
    xcut = f.x_f if x_f is None else x_f
    for tau, x, duration in realized:
        if tau >= tcut and x >= xcut and duration < f(tau, x) - 1e-9:
            return False
    return True


__all__ = [
    "AffineF",
    "BoundedF",
    "DecreasingF",
    "FFunction",
    "LinearF",
    "LogF",
    "SqrtF",
    "check_f1",
    "check_f2_divergence",
    "check_f3_domination",
]
