"""Timer behaviour models -- the realized duration function ``T_R``.

A :class:`TimerBehavior` decides, when a process sets its timer at time
``tau`` to timeout value ``x``, how long the timer *actually* takes to
expire.  The paper's Figure 1 situation is modelled directly by
:class:`AsymptoticallyWellBehavedTimer`: an arbitrarily misbehaving
prefix (the timer may fire almost immediately regardless of ``x``,
producing the false suspicions the algorithms must absorb), followed by
an era in which the duration always dominates a chosen ``f`` while still
jittering non-monotonically above it.

Every behaviour records its ``(tau, x, duration)`` history so (f3) can
be checked post-run and the Figure 1 series regenerated.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple

from repro.sim.rng import RngRegistry
from repro.timers.functions import FFunction, LinearF


class TimerBehavior(Protocol):
    """Protocol for realized timer durations."""

    def duration(self, pid: int, tau: float, x: float) -> float:
        """Realized duration when ``pid`` sets its timer at ``tau`` to ``x``."""
        ...


class _HistoryMixin:
    """Shared bookkeeping: the realized ``(tau, x, duration)`` samples."""

    def __init__(self) -> None:
        self.history: List[Tuple[float, float, float]] = []

    def _remember(self, tau: float, x: float, d: float) -> float:
        self.history.append((tau, x, d))
        return d


class AccurateTimer(_HistoryMixin):
    """The ideal timer: duration equals the timeout value exactly.

    Satisfies AWB2 with ``f(tau, x) = x`` trivially.  Used as a control
    and in unit tests where hand-computed schedules are needed.
    """

    def duration(self, pid: int, tau: float, x: float) -> float:
        """Exactly the requested timeout ``x``."""
        return self._remember(tau, x, max(x, 1e-9))


class AsymptoticallyWellBehavedTimer(_HistoryMixin):
    """The paper's AWB2 timer.

    Parameters
    ----------
    f:
        The dominated lower-bound function (must satisfy f1 + f2).
    rng:
        Randomness source (per-pid streams).
    chaos_until:
        The model's ``tau_f``: timers set before this instant may
        realize *any* duration in ``[chaos_lo, chaos_hi]`` independent
        of ``x`` -- in particular far too short, triggering false
        suspicions.
    chaos_lo / chaos_hi:
        Range of chaotic durations.
    jitter:
        After ``chaos_until`` the duration is
        ``f(tau, x) * (1 + U[0, jitter])`` -- above ``f`` but not
        monotone in ``x``, matching Figure 1's wiggly ``T_R``.
    """

    def __init__(
        self,
        f: FFunction,
        rng: RngRegistry,
        chaos_until: float = 200.0,
        chaos_lo: float = 0.05,
        chaos_hi: float = 2.0,
        jitter: float = 0.5,
    ) -> None:
        super().__init__()
        if not (0 < chaos_lo <= chaos_hi):
            raise ValueError("need 0 < chaos_lo <= chaos_hi")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.f = f
        self.chaos_until = chaos_until
        self.chaos_lo = chaos_lo
        self.chaos_hi = chaos_hi
        self.jitter = jitter
        self._rng = rng

    def duration(self, pid: int, tau: float, x: float) -> float:
        """Arbitrary during the chaos era; ``f(tau, x)`` plus jitter after."""
        stream = self._rng.stream(f"timer:{pid}")
        if tau < self.chaos_until:
            d = stream.uniform(self.chaos_lo, self.chaos_hi)
        else:
            base = max(self.f(tau, x), 1e-9)
            d = base * (1.0 + stream.uniform(0.0, self.jitter))
        return self._remember(tau, x, d)


class EventuallyMonotoneTimer(_HistoryMixin):
    """The *traditional* timer the paper generalizes away from.

    After ``accurate_after`` the duration is exactly ``alpha * x``
    (monotone in ``x``); before, it is uniformly random.  Every
    eventually-monotone timer is asymptotically well-behaved (take
    ``f = alpha * x``), so the algorithms must work with it -- covered
    by tests as the "stronger assumption still works" case.
    """

    def __init__(
        self,
        rng: RngRegistry,
        accurate_after: float = 100.0,
        alpha: float = 1.0,
        chaos_lo: float = 0.05,
        chaos_hi: float = 2.0,
    ) -> None:
        super().__init__()
        self.accurate_after = accurate_after
        self.alpha = alpha
        self.chaos_lo = chaos_lo
        self.chaos_hi = chaos_hi
        self._rng = rng

    def duration(self, pid: int, tau: float, x: float) -> float:
        """Arbitrary before ``accurate_after``; exactly ``alpha * x`` after."""
        stream = self._rng.stream(f"timer:{pid}")
        if tau < self.accurate_after:
            d = stream.uniform(self.chaos_lo, self.chaos_hi)
        else:
            d = max(self.alpha * x, 1e-9)
        return self._remember(tau, x, d)


class CappedTimer(_HistoryMixin):
    """VIOLATOR of AWB2: the duration never exceeds ``cap``.

    No divergent ``f`` can be dominated, so a process using this timer
    may keep falsely suspecting a slow-but-timely leader forever.  The
    negative tests use it to show AWB2 is *load-bearing*: with capped
    timers on every follower and a leader period above the cap, the
    election never stabilizes.
    """

    def __init__(self, rng: RngRegistry, cap: float = 3.0, lo: float = 0.05) -> None:
        super().__init__()
        if not (0 < lo <= cap):
            raise ValueError("need 0 < lo <= cap")
        self.cap = cap
        self.lo = lo
        self._rng = rng

    def duration(self, pid: int, tau: float, x: float) -> float:
        """Never exceeds ``cap``, whatever ``x`` asks (violates AWB2)."""
        stream = self._rng.stream(f"timer:{pid}")
        d = min(max(x, self.lo), self.cap) * stream.uniform(0.5, 1.0)
        return self._remember(tau, x, max(d, self.lo))


__all__ = [
    "AccurateTimer",
    "AsymptoticallyWellBehavedTimer",
    "CappedTimer",
    "EventuallyMonotoneTimer",
    "TimerBehavior",
]
