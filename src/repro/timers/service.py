"""The kernel-attached timer service.

Task ``T3`` of both algorithms runs "when ``timer_i`` expires".  The
service turns a ``set_timer(pid, x)`` into a kernel event whose firing
time is decided by the process's :class:`~repro.timers.awb.TimerBehavior`
-- the component assumption AWB2 constrains.  The timeout *value* ``x``
is a pure number (the algorithms use ``max_k SUSPICIONS[i][k] + 1``);
only the behaviour model converts it into virtual-time duration.

Timers are one of the two dominant cancellable event kinds, so they ride
the kernel's columnar fast lane (:class:`~repro.sim.events.EventLane`):
arming a timer stores its callback in the lane's preallocated payload
column and gets back an integer token -- no per-event
:class:`~repro.sim.events.EventHandle` allocation, O(1) cancellation via
the lane's generation counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.events import EventLane
from repro.sim.kernel import Simulator
from repro.timers.awb import TimerBehavior


@dataclass(slots=True)
class TimerHandle:
    """Reference to an armed timer; cancellable."""

    pid: int
    timeout: float
    set_at: float
    fires_at: float
    _lane: EventLane
    _token: int

    def cancel(self) -> None:
        """Disarm the timer (its callback will not run)."""
        self._lane.cancel(self._token)


class TimerService:
    """Per-process timers driven by pluggable behaviour models.

    Parameters
    ----------
    sim:
        The simulation kernel supplying the clock and event queue.
    behavior_for:
        Maps pid to its :class:`TimerBehavior`.  Different processes may
        have different behaviours (the AWB1 process's timer is entirely
        unconstrained by the paper -- scenarios exploit that).
    """

    def __init__(self, sim: Simulator, behavior_for: Dict[int, TimerBehavior]) -> None:
        self._sim = sim
        self._behaviors = behavior_for
        #: realized (set_at, timeout, duration) per pid -- Figure 1 data.
        self.history_by_pid: Dict[int, List[Tuple[float, float, float]]] = {}
        self._active: Dict[int, TimerHandle] = {}
        # Lane payloads are the timer callbacks themselves (consume=None
        # means "payload is a zero-arg callable; invoke it").
        self._lane = EventLane("timer", None)

    def behavior(self, pid: int) -> TimerBehavior:
        """The behaviour model of ``pid`` (KeyError if none configured)."""
        return self._behaviors[pid]

    def set_timer(self, pid: int, timeout: float, callback: Callable[[], None]) -> TimerHandle:
        """Arm (or re-arm) ``pid``'s timer to ``timeout``.

        Re-arming cancels any previously armed timer of the same
        process -- each process owns exactly one timer, as in the paper.
        Returns the handle.
        """
        previous = self._active.get(pid)
        if previous is not None:
            previous.cancel()
        now = self._sim.now
        duration = self._behaviors[pid].duration(pid, now, timeout)
        if duration <= 0:
            raise ValueError(f"behaviour produced non-positive duration {duration}")
        self.history_by_pid.setdefault(pid, []).append((now, timeout, duration))
        # Re-arming must disarm the previous event, so timers go through
        # the columnar lane: cancellable, but allocation-free.
        token = self._sim.schedule_lane_after(self._lane, duration, callback, pid=pid)
        handle = TimerHandle(
            pid=pid,
            timeout=timeout,
            set_at=now,
            fires_at=now + duration,
            _lane=self._lane,
            _token=token,
        )
        self._active[pid] = handle
        return handle

    def cancel(self, pid: int) -> None:
        """Disarm ``pid``'s timer if armed (used on crash)."""
        handle = self._active.pop(pid, None)
        if handle is not None:
            handle.cancel()

    def active_timer(self, pid: int) -> Optional[TimerHandle]:
        """The currently armed timer of ``pid``, if any."""
        return self._active.get(pid)


__all__ = ["TimerHandle", "TimerService"]
