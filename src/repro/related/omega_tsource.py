"""Timer-based message-passing Omega under an eventual t-source.

A compact representative of the Aguilera et al. [2, 3] family:

* every process broadcasts ``ALIVE`` heartbeats every ``period``,
  carrying its accusation vector;
* every process watches each peer with an adaptive timeout: a silent
  peer gets *accused* (its local accusation counter increments), and a
  false accusation -- discovered when the peer's heartbeat shows up
  after all -- doubles that peer's timeout;
* accusation vectors merge by pointwise maximum as heartbeats arrive
  (gossip), so after the t-source's links become timely its (bounded)
  counter value propagates to everyone;
* ``leader() = lexmin(accusations[j], j)``.

Under the eventual t-source assumption
(:class:`~repro.netsim.network.EventuallyTimelyLinks`), the source's
accusations stop once its watchers' timeouts exceed the delivery bound
(the doubling guarantees this), crashed or chronically slow processes
keep accumulating accusations, and the election stabilizes -- the same
Lemma-2 shape as the paper's shared-memory algorithms, with the timing
assumption moved from a process's write cadence to its outgoing links.

Simplification vs [2]: we elect the least-accused process rather than
implementing their exact constant-time local outputs; the assumptions
exercised (fair-lossy channels + one eventually timely source, adaptive
timeouts, gossiped counters) are theirs.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.lexmin import lexmin_pair
from repro.netsim.network import Message
from repro.netsim.runtime import MpProcess


class TSourceOmega(MpProcess):
    """Heartbeat / accusation-counter Omega (timer-based family).

    Config keys:

    ``period`` (default 2.0)
        Heartbeat broadcast period.
    ``initial_timeout`` (default 8.0)
        Initial per-peer silence timeout.
    """

    display_name = "mp-tsource"

    def __init__(self, pid: int, n: int, config: Dict[str, Any]) -> None:
        super().__init__(pid, n, config)
        self.period: float = float(config.get("period", 2.0))
        initial_timeout: float = float(config.get("initial_timeout", 8.0))
        #: Merged accusation counters (pointwise max over all gossip).
        self.accusations: List[int] = [0] * n
        self.timeout: List[float] = [initial_timeout] * n
        self.heard_since_check: List[bool] = [False] * n
        self.currently_accused: List[bool] = [False] * n

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Arm the heartbeat and one watchdog timer per peer."""
        self.set_timer("heartbeat", self.period)
        for j in range(self.n):
            if j != self.pid:
                self.set_timer(f"watch:{j}", self.timeout[j])

    def on_timer(self, tag: str) -> None:
        """Heartbeat: broadcast ALIVE; watchdog: accuse the silent peer."""
        if tag == "heartbeat":
            self.broadcast("ALIVE", list(self.accusations))
            self.set_timer("heartbeat", self.period)
            return
        assert tag.startswith("watch:")
        j = int(tag.split(":", 1)[1])
        if not self.heard_since_check[j]:
            # Silent peer: accuse (locally; gossip spreads it).
            self.accusations[j] += 1
            self.currently_accused[j] = True
        self.heard_since_check[j] = False
        self.set_timer(tag, self.timeout[j])

    def on_message(self, message: Message) -> None:
        """Note the sender alive, undo false accusations (doubling its
        timeout), and merge the gossiped accusation counters."""
        if message.kind != "ALIVE":
            return
        j = message.sender
        self.heard_since_check[j] = True
        if self.currently_accused[j]:
            # False accusation discovered: back off for this peer.
            self.timeout[j] *= 2.0
            self.currently_accused[j] = False
        for k, count in enumerate(message.payload):
            if count > self.accusations[k]:
                self.accusations[k] = count

    # ------------------------------------------------------------------
    def peek_leader(self) -> int:
        """The lexicographically minimal ``(accusations, pid)`` process."""
        return lexmin_pair((self.accusations[j], j) for j in range(self.n))[1]


__all__ = ["TSourceOmega"]
