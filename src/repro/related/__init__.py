"""Related-work Omega algorithms (message passing).

The paper's Section 1 contrasts its shared-memory construction with the
two message-passing families:

* the **timer-based approach** -- eventually timely links, adaptive
  timeouts (Aguilera et al. [2, 3]; Larrea et al. [17]):
  :class:`~repro.related.omega_tsource.TSourceOmega`;
* the **message-pattern approach** -- no timing assumption at all, only
  an ordering property on query winners (Mostefaoui et al. [21, 23]):
  :class:`~repro.related.omega_pattern.PatternOmega`.

Both run on :mod:`repro.netsim` and expose the same observer interface
as the shared-memory algorithms, so the Omega property checks and the
comparison bench treat all of them uniformly.
"""

from repro.related.omega_pattern import PatternOmega, pattern_friendly_links
from repro.related.omega_tsource import TSourceOmega

__all__ = ["PatternOmega", "TSourceOmega", "pattern_friendly_links"]
