"""Message-pattern (time-free) Omega -- the [21, 23] approach.

No timing assumption whatsoever: the algorithm never sets a timeout.
Each process runs query/response rounds:

* broadcast ``QUERY(seq)``; peers answer ``RESPONSE(seq)`` immediately
  (both carry the sender's miss-counter vector, merged by pointwise
  max);
* the first ``n - t - 1`` responses to arrive (plus the querier's
  implicit self-response, giving the paper's ``n - t`` winners) are the
  round's *winning responses*; every other peer's miss counter
  increments;
* the next round starts as soon as the current one closes -- pacing
  comes from message latency alone, so the construction is genuinely
  time-free;
* ``leader() = lexmin(misses[j], j)``.

The behavioural assumption (from [21]) is that some correct process
``p`` responds among the winners of every query issued by some set
``Q`` of ``t + 1`` processes, eventually.  :func:`pattern_friendly_links`
realizes a strong form of it: ``p``'s response latency is strictly
below everyone else's lower bound, so ``p`` is *always* a winner (and
the assumption is incomparable with timeliness: all other links may be
arbitrarily slow, which the model makes them).

Simplification vs [23]: counters gossip inside the queries/responses
themselves rather than through their exact exchange structure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.lexmin import lexmin_pair
from repro.netsim.network import ChannelBehavior, Message
from repro.netsim.runtime import MpProcess
from repro.sim.rng import RngRegistry


class _SplitLatencyLinks:
    """No-loss links making one process's query round-trip strictly
    fastest: queries *to* it and responses *from* it beat everyone
    else's lower bound, so its response is always among the winners.
    All other traffic has unbounded-looking delays (spikes) -- only the
    *order* of arrivals is constrained, which is the point of the
    pattern approach."""

    def __init__(self, rng: RngRegistry, fast_sources: Set[int]) -> None:
        self._rng = rng
        self.fast_sources = frozenset(fast_sources)

    def delivery_delay(self, message: Message) -> Optional[float]:
        stream = self._rng.stream(f"link:{message.sender}->{message.receiver}")
        fast = (message.sender in self.fast_sources and message.kind == "RESPONSE") or (
            message.receiver in self.fast_sources and message.kind == "QUERY"
        )
        if fast:
            return stream.uniform(0.2, 0.5)
        if stream.random() < 0.1:
            return stream.uniform(10.0, 60.0)  # spike: no bound is safe
        return stream.uniform(0.6, 5.0)


def pattern_friendly_links(rng: RngRegistry, winner: int = 0) -> ChannelBehavior:
    """Channels satisfying the winning-responses assumption for ``winner``."""
    return _SplitLatencyLinks(rng, {winner})


class PatternOmega(MpProcess):
    """Query/response, winning-set Omega (time-free family).

    Config keys:

    ``t`` (default 1)
        Assumed fault bound; a round closes on its first ``n - t``
        winners (querier included).
    """

    display_name = "mp-pattern"

    def __init__(self, pid: int, n: int, config: Dict[str, Any]) -> None:
        super().__init__(pid, n, config)
        self.t: int = int(config.get("t", 1))
        if not 0 < self.t < n:
            raise ValueError("need 0 < t < n")
        #: Merged miss counters.
        self.misses: List[int] = [0] * n
        self.seq = 0
        self._responders: Set[int] = set()
        self._round_open = False

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Open the first query round at process start."""
        self._open_round()

    def _open_round(self) -> None:
        self.seq += 1
        self._responders = {self.pid}  # implicit self-response
        self._round_open = True
        self.broadcast("QUERY", (self.seq, list(self.misses)))

    def _close_round(self) -> None:
        # Everyone who did not respond among the first n - t is missed.
        for j in range(self.n):
            if j not in self._responders:
                self.misses[j] += 1
        self._round_open = False
        self._open_round()

    def on_message(self, message: Message) -> None:
        """Merge gossiped miss counters; answer queries; close the round
        once the first ``n - t`` responders are in."""
        if message.kind == "QUERY":
            seq, counters = message.payload
            self._merge(counters)
            self.send(message.sender, "RESPONSE", (seq, list(self.misses)))
        elif message.kind == "RESPONSE":
            seq, counters = message.payload
            self._merge(counters)
            if not self._round_open or seq != self.seq:
                return  # stale response from an already-closed round
            self._responders.add(message.sender)
            if len(self._responders) >= self.n - self.t:
                self._close_round()

    def _merge(self, counters: List[int]) -> None:
        for k, count in enumerate(counters):
            if count > self.misses[k]:
                self.misses[k] = count

    # ------------------------------------------------------------------
    def peek_leader(self) -> int:
        """The lexicographically minimal ``(miss count, pid)`` process."""
        return lexmin_pair((self.misses[j], j) for j in range(self.n))[1]


__all__ = ["PatternOmega", "pattern_friendly_links"]
